#include "dist/wire.hpp"

#include "util/error.hpp"

namespace hdcs::dist {

namespace {
void check_type(const net::Message& m, net::MessageType expected) {
  if (m.type != expected) {
    throw ProtocolError(std::string("expected ") + net::to_string(expected) +
                        " frame, got " + net::to_string(m.type));
  }
}

net::Message make(net::MessageType type, std::uint64_t correlation, ByteWriter w) {
  net::Message m;
  m.type = type;
  m.correlation = correlation;
  m.payload = w.take();
  return m;
}
}  // namespace

net::Message encode_hello(const HelloPayload& p, std::uint64_t correlation) {
  ByteWriter w;
  w.str(p.client_name);
  w.u32(p.cores);
  w.f64(p.benchmark_ops_per_sec);
  return make(net::MessageType::kHello, correlation, std::move(w));
}

HelloPayload decode_hello(const net::Message& m) {
  check_type(m, net::MessageType::kHello);
  auto r = m.reader();
  HelloPayload p;
  p.client_name = r.str();
  p.cores = r.u32();
  p.benchmark_ops_per_sec = r.f64();
  r.expect_end();
  return p;
}

net::Message encode_hello_ack(const HelloAckPayload& p, std::uint64_t correlation) {
  ByteWriter w;
  w.u64(p.client_id);
  w.f64(p.heartbeat_interval_s);
  return make(net::MessageType::kHelloAck, correlation, std::move(w));
}

HelloAckPayload decode_hello_ack(const net::Message& m) {
  check_type(m, net::MessageType::kHelloAck);
  auto r = m.reader();
  HelloAckPayload p;
  p.client_id = r.u64();
  p.heartbeat_interval_s = r.f64();
  r.expect_end();
  return p;
}

net::Message encode_request_work(ClientId client, std::uint64_t correlation) {
  ByteWriter w;
  w.u64(client);
  return make(net::MessageType::kRequestWork, correlation, std::move(w));
}

ClientId decode_request_work(const net::Message& m) {
  check_type(m, net::MessageType::kRequestWork);
  auto r = m.reader();
  ClientId id = r.u64();
  r.expect_end();
  return id;
}

namespace {
void write_unit_fields(ByteWriter& w, ProblemId pid, UnitId uid, std::uint32_t stage) {
  w.u64(pid);
  w.u64(uid);
  w.u32(stage);
}
}  // namespace

net::Message encode_work_assignment(const WorkUnit& unit, std::uint64_t correlation,
                                    std::uint16_t version) {
  ByteWriter w;
  write_unit_fields(w, unit.problem_id, unit.unit_id, unit.stage);
  w.f64(unit.cost_ops);
  w.bytes(unit.payload);
  if (version >= 4) {
    w.u32(static_cast<std::uint32_t>(unit.blobs.size()));
    for (const WorkBlob& blob : unit.blobs) {
      w.u64(blob.digest);
      w.u64(blob.size);
    }
  }
  if (version >= 6) w.u64(unit.epoch);
  auto m = make(net::MessageType::kWorkAssignment, correlation, std::move(w));
  m.version = version;
  return m;
}

WorkUnit decode_work_assignment(const net::Message& m) {
  check_type(m, net::MessageType::kWorkAssignment);
  auto r = m.reader();
  WorkUnit unit;
  unit.problem_id = r.u64();
  unit.unit_id = r.u64();
  unit.stage = r.u32();
  unit.cost_ops = r.f64();
  unit.payload = r.bytes();
  if (m.version >= 4) {
    std::uint32_t count = r.u32();
    unit.blobs.reserve(count);
    for (std::uint32_t i = 0; i < count; ++i) {
      WorkBlob blob;
      blob.digest = r.u64();
      blob.size = r.u64();
      unit.blobs.push_back(std::move(blob));
    }
  }
  if (m.version >= 6) unit.epoch = r.u64();
  r.expect_end();
  return unit;
}

net::Message encode_no_work(const NoWorkPayload& p, std::uint64_t correlation) {
  ByteWriter w;
  w.f64(p.retry_after_s);
  w.boolean(p.all_problems_complete);
  return make(net::MessageType::kNoWorkAvailable, correlation, std::move(w));
}

NoWorkPayload decode_no_work(const net::Message& m) {
  check_type(m, net::MessageType::kNoWorkAvailable);
  auto r = m.reader();
  NoWorkPayload p;
  p.retry_after_s = r.f64();
  p.all_problems_complete = r.boolean();
  r.expect_end();
  return p;
}

net::Message encode_retry_later(const RetryLaterPayload& p,
                                std::uint64_t correlation) {
  ByteWriter w;
  w.f64(p.retry_after_s);
  w.str(p.reason);
  return make(net::MessageType::kRetryLater, correlation, std::move(w));
}

RetryLaterPayload decode_retry_later(const net::Message& m) {
  check_type(m, net::MessageType::kRetryLater);
  auto r = m.reader();
  RetryLaterPayload p;
  p.retry_after_s = r.f64();
  p.reason = r.str();
  r.expect_end();
  return p;
}

net::Message encode_submit_result(ClientId client, const ResultUnit& result,
                                  std::uint64_t correlation,
                                  std::uint16_t version) {
  ByteWriter w;
  w.u64(client);
  write_unit_fields(w, result.problem_id, result.unit_id, result.stage);
  w.bytes(result.payload);
  w.u32(result.payload_crc);
  if (version >= 5) {
    w.boolean(result.profile.has_value());
    if (result.profile) {
      const obs::UnitProfile& p = *result.profile;
      w.f64(p.queue_wait_s);
      w.f64(p.blob_fetch_s);
      w.f64(p.decompress_s);
      w.f64(p.compute_s);
      w.f64(p.encode_s);
      w.u32(p.threads);
      w.u64(p.saturations);
    }
  }
  if (version >= 6) w.u64(result.epoch);
  auto m = make(net::MessageType::kSubmitResult, correlation, std::move(w));
  m.version = version;
  return m;
}

std::pair<ClientId, ResultUnit> decode_submit_result(const net::Message& m) {
  check_type(m, net::MessageType::kSubmitResult);
  auto r = m.reader();
  ClientId client = r.u64();
  ResultUnit result;
  result.problem_id = r.u64();
  result.unit_id = r.u64();
  result.stage = r.u32();
  result.payload = r.bytes();
  result.payload_crc = r.u32();
  if (m.version >= 5 && r.boolean()) {
    obs::UnitProfile p;
    p.queue_wait_s = r.f64();
    p.blob_fetch_s = r.f64();
    p.decompress_s = r.f64();
    p.compute_s = r.f64();
    p.encode_s = r.f64();
    p.threads = r.u32();
    p.saturations = r.u64();
    result.profile = p;
  }
  if (m.version >= 6) result.epoch = r.u64();
  r.expect_end();
  return {client, std::move(result)};
}

net::Message encode_result_ack(const ResultAckPayload& p, std::uint64_t correlation) {
  ByteWriter w;
  w.boolean(p.accepted);
  return make(net::MessageType::kResultAck, correlation, std::move(w));
}

ResultAckPayload decode_result_ack(const net::Message& m) {
  check_type(m, net::MessageType::kResultAck);
  auto r = m.reader();
  ResultAckPayload p;
  p.accepted = r.boolean();
  r.expect_end();
  return p;
}

net::Message encode_fetch_problem_data(const FetchProblemDataPayload& p,
                                       std::uint64_t correlation) {
  ByteWriter w;
  w.u64(p.problem_id);
  return make(net::MessageType::kFetchProblemData, correlation, std::move(w));
}

FetchProblemDataPayload decode_fetch_problem_data(const net::Message& m) {
  check_type(m, net::MessageType::kFetchProblemData);
  auto r = m.reader();
  FetchProblemDataPayload p;
  p.problem_id = r.u64();
  r.expect_end();
  return p;
}

net::Message encode_problem_data_header(const ProblemDataHeaderPayload& p,
                                        std::uint64_t correlation,
                                        std::uint16_t version) {
  ByteWriter w;
  w.u64(p.problem_id);
  w.str(p.algorithm_name);
  w.u64(p.data_bytes);
  if (version >= 4) w.u64(p.data_digest);
  auto m = make(net::MessageType::kProblemData, correlation, std::move(w));
  m.version = version;
  return m;
}

ProblemDataHeaderPayload decode_problem_data_header(const net::Message& m) {
  check_type(m, net::MessageType::kProblemData);
  auto r = m.reader();
  ProblemDataHeaderPayload p;
  p.problem_id = r.u64();
  p.algorithm_name = r.str();
  p.data_bytes = r.u64();
  if (m.version >= 4) p.data_digest = r.u64();
  r.expect_end();
  return p;
}

net::Message encode_fetch_blobs(const FetchBlobsPayload& p,
                                std::uint64_t correlation) {
  ByteWriter w;
  w.u64(p.client_id);
  w.u32(static_cast<std::uint32_t>(p.digests.size()));
  for (std::uint64_t digest : p.digests) w.u64(digest);
  return make(net::MessageType::kFetchBlobs, correlation, std::move(w));
}

FetchBlobsPayload decode_fetch_blobs(const net::Message& m) {
  check_type(m, net::MessageType::kFetchBlobs);
  auto r = m.reader();
  FetchBlobsPayload p;
  p.client_id = r.u64();
  std::uint32_t count = r.u32();
  p.digests.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) p.digests.push_back(r.u64());
  r.expect_end();
  return p;
}

net::Message encode_blob_data(const BlobDataPayload& p,
                              std::uint64_t correlation) {
  ByteWriter w;
  w.u32(static_cast<std::uint32_t>(p.blobs.size()));
  for (const auto& entry : p.blobs) {
    w.u64(entry.digest);
    w.boolean(entry.present);
  }
  return make(net::MessageType::kBlobData, correlation, std::move(w));
}

BlobDataPayload decode_blob_data(const net::Message& m) {
  check_type(m, net::MessageType::kBlobData);
  auto r = m.reader();
  BlobDataPayload p;
  std::uint32_t count = r.u32();
  p.blobs.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    BlobDataPayload::Entry entry;
    entry.digest = r.u64();
    entry.present = r.boolean();
    p.blobs.push_back(entry);
  }
  r.expect_end();
  return p;
}

net::Message encode_heartbeat(ClientId client, std::uint64_t correlation) {
  ByteWriter w;
  w.u64(client);
  return make(net::MessageType::kHeartbeat, correlation, std::move(w));
}

ClientId decode_heartbeat(const net::Message& m) {
  check_type(m, net::MessageType::kHeartbeat);
  auto r = m.reader();
  ClientId id = r.u64();
  r.expect_end();
  return id;
}

net::Message encode_goodbye(ClientId client, std::uint64_t correlation) {
  ByteWriter w;
  w.u64(client);
  return make(net::MessageType::kGoodbye, correlation, std::move(w));
}

ClientId decode_goodbye(const net::Message& m) {
  check_type(m, net::MessageType::kGoodbye);
  auto r = m.reader();
  ClientId id = r.u64();
  r.expect_end();
  return id;
}

net::Message encode_fetch_stats(const FetchStatsPayload& p,
                                std::uint64_t correlation) {
  ByteWriter w;
  w.boolean(p.include_clients);
  return make(net::MessageType::kFetchStats, correlation, std::move(w));
}

FetchStatsPayload decode_fetch_stats(const net::Message& m) {
  check_type(m, net::MessageType::kFetchStats);
  auto r = m.reader();
  FetchStatsPayload p;
  p.include_clients = r.boolean();
  r.expect_end();
  return p;
}

net::Message encode_stats_snapshot(const StatsSnapshotPayload& p,
                                   std::uint64_t correlation) {
  ByteWriter w;
  w.str(p.json);
  return make(net::MessageType::kStatsSnapshot, correlation, std::move(w));
}

StatsSnapshotPayload decode_stats_snapshot(const net::Message& m) {
  check_type(m, net::MessageType::kStatsSnapshot);
  auto r = m.reader();
  StatsSnapshotPayload p;
  p.json = r.str();
  r.expect_end();
  return p;
}

net::Message encode_replica_hello(const ReplicaHelloPayload& p,
                                  std::uint64_t correlation) {
  ByteWriter w;
  w.str(p.standby_name);
  return make(net::MessageType::kReplicaHello, correlation, std::move(w));
}

ReplicaHelloPayload decode_replica_hello(const net::Message& m) {
  check_type(m, net::MessageType::kReplicaHello);
  auto r = m.reader();
  ReplicaHelloPayload p;
  p.standby_name = r.str();
  r.expect_end();
  return p;
}

net::Message encode_replica_snapshot(const ReplicaSnapshotPayload& p,
                                     std::uint64_t correlation) {
  ByteWriter w;
  w.u64(p.epoch);
  w.u64(p.start_lsn);
  w.u64(p.snapshot_bytes);
  return make(net::MessageType::kReplicaSnapshot, correlation, std::move(w));
}

ReplicaSnapshotPayload decode_replica_snapshot(const net::Message& m) {
  check_type(m, net::MessageType::kReplicaSnapshot);
  auto r = m.reader();
  ReplicaSnapshotPayload p;
  p.epoch = r.u64();
  p.start_lsn = r.u64();
  p.snapshot_bytes = r.u64();
  r.expect_end();
  return p;
}

net::Message encode_wal_append(const WalAppendPayload& p,
                               std::uint64_t correlation) {
  ByteWriter w;
  w.u32(static_cast<std::uint32_t>(p.records.size()));
  for (const auto& rec : p.records) w.bytes(rec);
  return make(net::MessageType::kWalAppend, correlation, std::move(w));
}

WalAppendPayload decode_wal_append(const net::Message& m) {
  check_type(m, net::MessageType::kWalAppend);
  auto r = m.reader();
  WalAppendPayload p;
  std::uint32_t count = r.u32();
  p.records.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) p.records.push_back(r.bytes());
  r.expect_end();
  return p;
}

}  // namespace hdcs::dist
