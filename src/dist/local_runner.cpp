#include "dist/local_runner.hpp"

#include "util/error.hpp"

namespace hdcs::dist {

std::vector<std::byte> run_locally(DataManager& dm, double unit_ops,
                                   LocalRunStats* stats,
                                   const AlgorithmRegistry& registry) {
  auto algorithm = registry.create(dm.algorithm_name());
  auto data = dm.problem_data();
  algorithm->initialize(data);

  SizeHint hint;
  hint.target_ops = unit_ops;
  UnitId next_id = 1;
  while (!dm.is_complete()) {
    auto unit = dm.next_unit(hint);
    if (!unit) {
      // Serial execution returns every result before asking for the next
      // unit, so a stage barrier can never be outstanding here.
      throw Error(
          "DataManager stalled: no unit available but problem not complete "
          "(broken barrier bookkeeping?)");
    }
    unit->problem_id = 1;
    unit->unit_id = next_id++;

    ResultUnit result;
    result.problem_id = unit->problem_id;
    result.unit_id = unit->unit_id;
    result.stage = unit->stage;
    result.payload = algorithm->process(*unit);
    if (stats) {
      stats->units += 1;
      stats->total_cost_ops += unit->cost_ops;
    }
    dm.accept_result(result);
  }
  return dm.final_result();
}

}  // namespace hdcs::dist
