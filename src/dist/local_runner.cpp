#include "dist/local_runner.hpp"

#include <deque>
#include <future>
#include <utility>

#include "util/blocking_queue.hpp"
#include "util/error.hpp"
#include "util/thread_pool.hpp"

namespace hdcs::dist {

namespace {

std::vector<std::byte> run_serial(DataManager& dm, double unit_ops,
                                  LocalRunStats* stats,
                                  const AlgorithmRegistry& registry) {
  auto algorithm = registry.create(dm.algorithm_name());
  auto data = dm.problem_data();
  algorithm->initialize(data);

  SizeHint hint;
  hint.target_ops = unit_ops;
  UnitId next_id = 1;
  while (!dm.is_complete()) {
    auto unit = dm.next_unit(hint);
    if (!unit) {
      // Serial execution returns every result before asking for the next
      // unit, so a stage barrier can never be outstanding here.
      throw Error(
          "DataManager stalled: no unit available but problem not complete "
          "(broken barrier bookkeeping?)");
    }
    unit->problem_id = 1;
    unit->unit_id = next_id++;

    ResultUnit result;
    result.problem_id = unit->problem_id;
    result.unit_id = unit->unit_id;
    result.stage = unit->stage;
    result.payload = algorithm->process(*unit);
    if (stats) {
      stats->units += 1;
      stats->total_cost_ops += unit->cost_ops;
    }
    dm.accept_result(result);
  }
  return dm.final_result();
}

std::vector<std::byte> run_threaded(DataManager& dm, double unit_ops,
                                    LocalRunStats* stats,
                                    const AlgorithmRegistry& registry,
                                    std::size_t threads) {
  auto data = dm.problem_data();
  // One Algorithm per worker, exactly as each donor process would hold its
  // own instance; a free-list hands instances to whichever task runs next.
  // (Declared before the pool so in-flight tasks outlive neither.)
  std::vector<std::unique_ptr<Algorithm>> algorithms;
  BlockingQueue<std::size_t> free_algorithms;
  for (std::size_t i = 0; i < threads; ++i) {
    algorithms.push_back(registry.create(dm.algorithm_name()));
    algorithms.back()->initialize(data);
    free_algorithms.push(i);
  }
  ThreadPool pool(threads);

  SizeHint hint;
  hint.target_ops = unit_ops;
  UnitId next_id = 1;
  struct InFlight {
    WorkUnit unit;
    std::future<std::vector<std::byte>> payload;
  };
  std::deque<InFlight> in_flight;
  const std::size_t max_in_flight = threads * 2;

  while (!dm.is_complete()) {
    while (in_flight.size() < max_in_flight) {
      auto unit = dm.next_unit(hint);
      if (!unit) break;  // barrier (or drained) — drain results below
      unit->problem_id = 1;
      unit->unit_id = next_id++;
      WorkUnit u = *unit;
      auto payload = pool.submit_with_result(
          [&algorithms, &free_algorithms, u = std::move(u)] {
            // At most `threads` tasks run at once, so an instance is
            // always available without blocking.
            auto idx = free_algorithms.pop();
            if (!idx) throw Error("run_locally: algorithm pool closed");
            struct ReturnToPool {
              BlockingQueue<std::size_t>& queue;
              std::size_t index;
              ~ReturnToPool() { queue.push(index); }
            } guard{free_algorithms, *idx};
            return algorithms[*idx]->process(u);
          });
      in_flight.push_back({std::move(*unit), std::move(payload)});
    }
    if (in_flight.empty()) {
      throw Error(
          "DataManager stalled: no unit available, none in flight, problem "
          "not complete (broken barrier bookkeeping?)");
    }
    // Accept strictly in issue order: DataManagers may fold results into
    // running reductions, so order is part of byte-level determinism.
    InFlight done = std::move(in_flight.front());
    in_flight.pop_front();
    ResultUnit result;
    result.problem_id = done.unit.problem_id;
    result.unit_id = done.unit.unit_id;
    result.stage = done.unit.stage;
    result.payload = done.payload.get();
    if (stats) {
      stats->units += 1;
      stats->total_cost_ops += done.unit.cost_ops;
    }
    dm.accept_result(result);
  }
  return dm.final_result();
}

}  // namespace

std::vector<std::byte> run_locally(DataManager& dm, double unit_ops,
                                   LocalRunStats* stats,
                                   const AlgorithmRegistry& registry,
                                   std::size_t threads) {
  if (threads <= 1) return run_serial(dm, unit_ops, stats, registry);
  return run_threaded(dm, unit_ops, stats, registry, threads);
}

}  // namespace hdcs::dist
