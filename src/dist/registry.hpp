#pragma once
// Algorithm registry — the C++ substitute for Java mobile code.
//
// The Java system ships the user's Algorithm class to donor JVMs via RMI
// class loading. C++ cannot ship code, so client binaries link the algorithm
// implementations they support and register a factory under the same name
// the DataManager advertises. The programming model (user supplies a
// DataManager + an Algorithm) is unchanged; only the delivery mechanism is.

#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "dist/algorithm.hpp"

namespace hdcs::dist {

class AlgorithmRegistry {
 public:
  /// Process-wide registry used by the TCP client and the local runner.
  static AlgorithmRegistry& global();

  /// Register a factory; throws InputError if the name is already taken
  /// (unless the factory is being re-registered identically in tests —
  /// use replace()).
  void register_algorithm(const std::string& name, AlgorithmFactory factory);

  /// Register-or-overwrite (idempotent registration helpers use this).
  void replace(const std::string& name, AlgorithmFactory factory);

  [[nodiscard]] bool contains(const std::string& name) const;

  /// Instantiate; throws InputError for unknown names.
  [[nodiscard]] std::unique_ptr<Algorithm> create(const std::string& name) const;

  [[nodiscard]] std::vector<std::string> names() const;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, AlgorithmFactory> factories_;
};

}  // namespace hdcs::dist
