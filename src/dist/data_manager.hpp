#pragma once
// The server-side half of a Problem.
//
// "The DataManager class (in the server) specifies how the problem is to be
// partitioned into units of work and the intermediate results put together,
// facilitating the computation of more generalisable problems, rather than
// being limited to trivially parallelisable problems" (paper §2.1).
//
// The scheduler *pulls* units from the DataManager one at a time, passing a
// SizeHint with the cost the requesting client can absorb in one target
// interval — this is how DSEARCH's dynamically-sized database chunks are
// realised. Staged computations (DPRml) return nullopt from next_unit()
// while a stage barrier is outstanding; the scheduler then tries other
// concurrently running problems, which is exactly why the paper runs six
// DPRml instances simultaneously (Fig. 2).

#include <optional>
#include <string>
#include <vector>

#include "dist/work.hpp"
#include "util/byte_buffer.hpp"
#include "util/error.hpp"

namespace hdcs::dist {

/// Scheduler's request for "about this much work" (abstract ops).
struct SizeHint {
  double target_ops = 1e6;
};

class DataManager {
 public:
  virtual ~DataManager() = default;

  /// Name of the client-side Algorithm (looked up in the AlgorithmRegistry)
  /// that processes this problem's units.
  [[nodiscard]] virtual std::string algorithm_name() const = 0;

  /// Bulk input data shipped once to each participating client
  /// (e.g. the FASTA database, the multiple sequence alignment).
  [[nodiscard]] virtual std::vector<std::byte> problem_data() const = 0;

  /// Produce the next unit, sized close to hint.target_ops where the
  /// problem permits. Must fill `stage`, `cost_ops` and `payload`;
  /// `problem_id`/`unit_id` are assigned by the scheduler.
  ///
  /// Returns nullopt when no unit can be produced *right now*. If
  /// is_complete() is also false, the problem is waiting on outstanding
  /// results (stage barrier) and the scheduler will come back after more
  /// results arrive.
  virtual std::optional<WorkUnit> next_unit(const SizeHint& hint) = 0;

  /// Merge one result. Called exactly once per completed unit, in
  /// completion order (not issue order).
  virtual void accept_result(const ResultUnit& result) = 0;

  /// True once every unit has been generated and every result merged.
  [[nodiscard]] virtual bool is_complete() const = 0;

  /// The merged final answer; only valid once is_complete().
  [[nodiscard]] virtual std::vector<std::byte> final_result() const = 0;

  /// Rough total remaining ops (generated + not yet generated). Used by
  /// size policies like guided self-scheduling; return 0 if unknown.
  [[nodiscard]] virtual double remaining_ops_estimate() const { return 0; }

  // ---- optional persistence (server checkpoint/restart) ----
  //
  // A long-lived server checkpoints problem progress to disk so a restart
  // does not lose days of donated cycles. A DataManager that opts in
  // serializes its *mutable* state only; the immutable inputs are supplied
  // again at reconstruction time. In-flight units are preserved by the
  // scheduler itself (it keeps their payloads) and re-delivered after the
  // restore, so implementations must persist whatever book-keeping counts
  // those units as outstanding.

  [[nodiscard]] virtual bool supports_snapshot() const { return false; }
  virtual void snapshot(ByteWriter& /*w*/) const {
    throw Error("DataManager does not support snapshots");
  }
  virtual void restore(ByteReader& /*r*/) {
    throw Error("DataManager does not support snapshots");
  }
};

}  // namespace hdcs::dist
