#include "dist/client.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <thread>

#include "net/bulk.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/logging.hpp"
#include "util/simd.hpp"
#include "util/stopwatch.hpp"

namespace hdcs::dist {

namespace {
/// FNV-1a of the donor name: a deterministic per-donor jitter seed, so a
/// herd of reconnecting donors spreads out without shared state.
std::uint64_t name_seed(const std::string& name) {
  std::uint64_t h = 1469598103934665603ull;
  for (char c : name) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 1099511628211ull;
  }
  return h;
}
}  // namespace

Client::Client(ClientConfig config)
    : config_(std::move(config)),
      endpoints_(config_.servers.empty()
                     ? std::vector<ServerEndpoint>{{config_.server_host,
                                                    config_.server_port}}
                     : config_.servers),
      backoff_(config_.backoff_initial_s, config_.backoff_max_s,
               config_.backoff_reset_beats),
      blob_cache_(net::BlobCacheConfig{config_.blob_cache_bytes,
                                       config_.blob_cache_dir,
                                       config_.blob_cache_disk_bytes}),
      epoch_(std::chrono::steady_clock::now()),
      backoff_rng_(name_seed(config_.name)) {
  // 0=scalar 1=sse2 2=avx2 (util/simd.hpp): the kernel tier this donor's
  // compute threads will dispatch.
  obs::Registry::global().gauge("simd.tier")
      .set(static_cast<double>(static_cast<int>(simd_tier())));
}

double Client::now() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       epoch_)
      .count();
}

void Client::send_message(net::TcpStream& stream, net::Message m) {
  m.version = static_cast<std::uint16_t>(config_.protocol_version);
  net::write_message(stream, m);
}

double Client::measure_benchmark() {
  // A short fixed numeric loop; the returned "ops/sec" is the same abstract
  // currency DataManagers use for cost_ops, calibrated loosely (one "op" ~
  // one inner-loop iteration of a dynamic-programming cell update).
  Stopwatch sw;
  volatile double acc = 0;
  constexpr std::uint64_t kIters = 2'000'000;
  for (std::uint64_t i = 0; i < kIters; ++i) {
    acc = acc + std::fma(1e-9, static_cast<double>(i & 0xff), 1e-12);
  }
  double secs = sw.seconds();
  if (secs <= 0) secs = 1e-6;
  return static_cast<double>(kIters) / secs;
}

std::vector<ClientRunStats> Client::run_pool(const ClientConfig& base,
                                             int count) {
  if (count < 1) throw InputError("run_pool: count must be >= 1");
  std::vector<ClientRunStats> stats(static_cast<std::size_t>(count));
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    threads.emplace_back([&base, &stats, i] {
      ClientConfig cfg = base;
      cfg.name = base.name + "-cpu" + std::to_string(i);
      try {
        stats[static_cast<std::size_t>(i)] = Client(cfg).run();
      } catch (const Error& e) {
        LOG_WARN("donor pool worker " << cfg.name << " failed: " << e.what());
      }
    });
  }
  for (auto& t : threads) t.join();
  return stats;
}

Client::ProblemContext& Client::context_for(net::TcpStream& stream, ProblemId id) {
  auto it = contexts_.find(id);
  if (it != contexts_.end()) return it->second;

  // First unit of this problem: download the bulk data and build the
  // Algorithm named by the DataManager. v3 streams the bytes right after
  // the header; v4 only names their digest, which we resolve through the
  // blob cache like any other blob — a donor that saw this problem before
  // a restart (disk cache) skips the download entirely.
  FetchProblemDataPayload fetch;
  fetch.problem_id = id;
  send_message(stream, encode_fetch_problem_data(fetch, next_correlation_++));
  auto header = decode_problem_data_header(net::read_message(stream));
  std::vector<std::byte> blob;
  if (config_.protocol_version >= 4) {
    auto resolved = resolve_blob(stream, header.data_digest);
    if (!resolved) {
      throw ProtocolError("server no longer holds problem data blob");
    }
    blob = std::move(*resolved);
  } else {
    blob = net::recv_blob(stream, config_.max_blob_bytes);
  }
  if (blob.size() != header.data_bytes) {
    throw ProtocolError("problem data size mismatch");
  }
  ProblemContext ctx;
  ctx.algorithm = config_.registry->create(header.algorithm_name);
  ctx.algorithm->initialize(blob);
  if (config_.exec_threads > 1) {
    ctx.algorithm->set_parallelism(config_.exec_threads);
  }
  LOG_INFO("problem " << id << ": fetched " << blob.size()
                      << " bytes, algorithm " << header.algorithm_name);
  return contexts_.emplace(id, std::move(ctx)).first->second;
}

void Client::note_retry_later(const RetryLaterPayload& nack) {
  retry_laters_ += 1;
  obs::Registry::global().counter("client.retry_laters").inc();
  LOG_DEBUG("client '" << config_.name << "' told to retry later ("
                       << nack.reason << ", " << nack.retry_after_s << "s)");
}

net::Message Client::fetch_blobs_round(net::TcpStream& stream,
                                       const FetchBlobsPayload& need) {
  for (;;) {
    send_message(stream, encode_fetch_blobs(need, next_correlation_++));
    net::Message reply = net::read_message(stream);
    if (reply.type != net::MessageType::kRetryLater) return reply;
    auto nack = decode_retry_later(reply);
    note_retry_later(nack);
    if (!backoff_wait(nack.retry_after_s)) {
      throw IoError("stopped while waiting to retry a blob fetch");
    }
  }
}

std::optional<std::vector<std::byte>> Client::resolve_blob(
    net::TcpStream& stream, std::uint64_t digest) {
  auto& bulk = net::bulk_plane_metrics();
  if (auto hit = blob_cache_.get(digest)) {
    bulk.blobs_cache_hit.inc();
    if (config_.tracer) {
      config_.tracer->event(now(), "blob_cache_hit")
          .u64("client", my_id_.load())
          .u64("digest", digest)
          .u64("size", hit->size());
    }
    return hit;
  }
  FetchBlobsPayload need;
  need.client_id = my_id_.load();
  need.digests.push_back(digest);
  auto reply = decode_blob_data(fetch_blobs_round(stream, need));
  if (reply.blobs.size() != 1 || reply.blobs[0].digest != digest) {
    throw ProtocolError("BlobData reply does not match the requested digest");
  }
  if (!reply.blobs[0].present) return std::nullopt;
  auto bytes =
      net::recv_blob_v4(stream, config_.max_blob_bytes, &profile_.decompress_s);
  if (net::blob_digest(bytes) != digest) {
    throw ProtocolError("fetched blob does not hash to its digest");
  }
  blob_cache_.put(digest, bytes);
  return bytes;
}

bool Client::ensure_blobs(net::TcpStream& stream, WorkUnit& unit) {
  if (unit.blobs.empty()) return true;
  auto& bulk = net::bulk_plane_metrics();
  std::vector<std::vector<std::byte>> resolved(unit.blobs.size());
  std::vector<std::size_t> missing;  // indices into unit.blobs
  for (std::size_t i = 0; i < unit.blobs.size(); ++i) {
    if (auto hit = blob_cache_.get(unit.blobs[i].digest)) {
      bulk.blobs_cache_hit.inc();
      if (config_.tracer) {
        config_.tracer->event(now(), "blob_cache_hit")
            .u64("client", my_id_.load())
            .u64("digest", unit.blobs[i].digest)
            .u64("size", hit->size());
      }
      resolved[i] = std::move(*hit);
    } else {
      missing.push_back(i);
    }
  }
  bool all_present = true;
  if (!missing.empty()) {
    FetchBlobsPayload need;
    need.client_id = my_id_.load();
    for (std::size_t i : missing) need.digests.push_back(unit.blobs[i].digest);
    auto reply = decode_blob_data(fetch_blobs_round(stream, need));
    if (reply.blobs.size() != missing.size()) {
      throw ProtocolError("BlobData reply count does not match the request");
    }
    // Drain every present body — even after discovering an absent blob —
    // so the stream stays framed; the side effect is that the bytes land
    // in the cache for the next unit that wants them.
    for (std::size_t k = 0; k < missing.size(); ++k) {
      std::uint64_t digest = unit.blobs[missing[k]].digest;
      if (reply.blobs[k].digest != digest) {
        throw ProtocolError("BlobData reply does not match the requested digest");
      }
      if (!reply.blobs[k].present) {
        all_present = false;
        continue;
      }
      auto bytes = net::recv_blob_v4(stream, config_.max_blob_bytes,
                                     &profile_.decompress_s);
      if (net::blob_digest(bytes) != digest) {
        throw ProtocolError("fetched blob does not hash to its digest");
      }
      blob_cache_.put(digest, bytes);
      resolved[missing[k]] = std::move(bytes);
    }
  }
  if (!all_present) return false;
  for (std::size_t i = 0; i < unit.blobs.size(); ++i) {
    unit.blobs[i].bytes = std::move(resolved[i]);
  }
  return true;
}

bool Client::backoff_wait(double delay) {
  double slept = 0;
  while (slept < delay) {
    if (stop_.load() || crash_.load()) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    slept += 0.02;
  }
  return !stop_.load() && !crash_.load();
}

void Client::rehello(net::TcpStream& stream, double benchmark) {
  HelloPayload hello;
  hello.client_name = config_.name;
  hello.cores = 1;
  hello.benchmark_ops_per_sec = benchmark;
  send_message(stream, encode_hello(hello, next_correlation_++));
  net::Message reply = net::read_message(stream);
  if (reply.type == net::MessageType::kRetryLater) {
    // Shed at the door (max_clients / fail-stop): count it like a failed
    // connect, so connect_session's backoff + endpoint rotation apply.
    auto nack = decode_retry_later(reply);
    note_retry_later(nack);
    throw IoError("server shedding load: " + nack.reason);
  }
  auto ack = decode_hello_ack(reply);
  my_id_.store(ack.client_id);
  heartbeat_interval_ = ack.heartbeat_interval_s;
  LOG_INFO("client '" << config_.name << "' registered as id " << ack.client_id);
}

bool Client::connect_session(net::TcpStream& stream, double benchmark) {
  int failures = 0;
  for (;;) {
    if (stop_.load() || crash_.load()) return false;
    const ServerEndpoint ep = endpoint();
    try {
      auto fresh = net::TcpStream::connect(ep.host, ep.port);
      rehello(fresh, benchmark);
      stream = std::move(fresh);
      return true;
    } catch (const IoError& e) {
      failures += 1;
      if (config_.max_connect_attempts > 0 &&
          failures >= config_.max_connect_attempts) {
        throw;
      }
      LOG_DEBUG("client '" << config_.name << "' connect to " << ep.host << ":"
                           << ep.port << " failed (" << e.what()
                           << "); rotating");
    } catch (const ProtocolError& e) {
      // A corrupt HelloAck — or an unpromoted standby rejecting Hello with
      // an error frame — counts like a failed connect: same backoff, and
      // the rotation below moves on to the next endpoint in the list.
      failures += 1;
      if (config_.max_connect_attempts > 0 &&
          failures >= config_.max_connect_attempts) {
        throw;
      }
      LOG_DEBUG("client '" << config_.name << "' handshake with " << ep.host
                           << ":" << ep.port << " failed (" << e.what()
                           << "); rotating");
    }
    rotate_endpoint();
    // The escalation lives in backoff_ and survives this call: only a
    // healthy session (heartbeat acks) resets it.
    double delay = backoff_.next_delay();
    double jitter = 1.0 + config_.backoff_jitter * backoff_rng_.uniform(-1.0, 1.0);
    if (!backoff_wait(delay * jitter)) return false;
  }
}

ClientRunStats Client::run() {
  ClientRunStats stats;
  obs::Registry::global().gauge("client.exec_threads")
      .set(static_cast<double>(std::max<std::size_t>(config_.exec_threads, 1)));
  double benchmark = measure_benchmark() / std::max(config_.throttle, 1.0);

  net::TcpStream stream;
  if (!connect_session(stream, benchmark)) {
    stats.retry_laters = retry_laters_;
    return stats;
  }

  // Heartbeats ride a second connection: the work connection is strictly
  // request/response, so it cannot carry liveness while a unit computes.
  // The thread reads my_id_ each beat so it follows re-Hellos, and it
  // reconnects with its own backoff if the server goes away for a while.
  std::atomic<bool> heartbeats_done{false};
  std::thread heartbeat_thread;
  if (config_.send_heartbeats && heartbeat_interval_ > 0) {
    heartbeat_thread = std::thread([this, &heartbeats_done,
                                    interval = heartbeat_interval_] {
      Rng hb_rng(name_seed(config_.name) ^ 0x6865617274626561ull);  // "heartbea"
      double delay = config_.backoff_initial_s;
      auto nap = [&heartbeats_done](double seconds) {
        double slept = 0;
        while (slept < seconds && !heartbeats_done.load()) {
          std::this_thread::sleep_for(std::chrono::milliseconds(20));
          slept += 0.02;
        }
      };
      while (!heartbeats_done.load()) {
        try {
          const ServerEndpoint ep = endpoint();
          auto hb_stream = net::TcpStream::connect(ep.host, ep.port);
          delay = config_.backoff_initial_s;
          std::uint64_t corr = 1;
          while (!heartbeats_done.load()) {
            send_message(hb_stream, encode_heartbeat(my_id_.load(), corr++));
            // HeartbeatAck, or kError for a heartbeat that raced a server
            // restart — either way the beat was delivered; keep going. Only
            // a real ack counts toward the healthy-session streak that
            // resets the reconnect backoff escalation.
            auto reply = net::read_message(hb_stream);
            if (reply.type == net::MessageType::kHeartbeatAck &&
                backoff_.heartbeat_ok()) {
              LOG_DEBUG("client '" << config_.name
                                   << "' session healthy; backoff reset");
            }
            nap(interval);
          }
          hb_stream.shutdown_write();
          return;
        } catch (const Error&) {
          // Server unreachable: back off and retry while the work loop
          // re-establishes its own session (and rotates the endpoint).
          backoff_.session_lost();
          double jitter =
              1.0 + config_.backoff_jitter * hb_rng.uniform(-1.0, 1.0);
          nap(delay * jitter);
          delay = std::min(delay * 2.0, config_.backoff_max_s);
        }
      }
    });
  }
  struct HeartbeatJoiner {
    std::atomic<bool>& done;
    std::thread& thread;
    ~HeartbeatJoiner() {
      done.store(true);
      if (thread.joinable()) thread.join();
    }
  } joiner{heartbeats_done, heartbeat_thread};

  // The work loop. `pending` buffers a computed-but-unacknowledged result:
  // if the session dies between compute and ack, the reconnected session
  // resubmits it instead of recomputing the unit (the server dedups by
  // unit id, so a double delivery is just a dropped duplicate).
  std::optional<ResultUnit> pending;
  bool resubmitting = false;
  int consecutive_idle = 0;
  bool session_ok = true;
  while (!stop_.load() && !crash_.load()) {
    try {
      if (!pending) {
        Stopwatch queue_sw;  // RequestWork sent -> assignment decoded
        send_message(stream,
                     encode_request_work(my_id_.load(), next_correlation_++));
        net::Message reply = net::read_message(stream);

        if (reply.type == net::MessageType::kNoWorkAvailable) {
          auto no_work = decode_no_work(reply);
          stats.idle_polls += 1;
          if (config_.exit_when_idle &&
              (no_work.all_problems_complete ||
               ++consecutive_idle >= config_.max_idle_polls)) {
            break;
          }
          std::this_thread::sleep_for(
              std::chrono::duration<double>(no_work.retry_after_s));
          continue;
        }
        if (reply.type == net::MessageType::kShutdown) break;
        if (reply.type == net::MessageType::kRetryLater) {
          // Overloaded (or degraded fail-stop) server shedding work
          // requests: honour the hint, keep the session.
          auto nack = decode_retry_later(reply);
          note_retry_later(nack);
          if (!backoff_wait(nack.retry_after_s)) break;
          continue;
        }
        if (reply.type == net::MessageType::kError) {
          // Our id is stale (client timeout, or the server restarted from a
          // checkpoint): re-register on this same connection and carry on.
          auto r = reply.reader();
          LOG_WARN("server rejected request for client '" << config_.name
                   << "': " << r.str() << " — re-registering");
          rehello(stream, benchmark);
          continue;
        }

        WorkUnit unit = decode_work_assignment(reply);
        profile_ = obs::UnitProfile{};
        profile_.queue_wait_s = queue_sw.seconds();
        profile_.threads = static_cast<std::uint32_t>(
            std::max<std::size_t>(config_.exec_threads, 1));
        consecutive_idle = 0;
        // blob_fetch covers problem-data + unit-blob resolution; the LZ
        // inflation inside recv_blob_v4 accumulates separately into
        // decompress_s, so subtract it to keep the two spans disjoint.
        double fetch_total = 0;
        ProblemContext* ctx = nullptr;
        bool blobs_ok;
        {
          obs::SpanTimer fetch(fetch_total);
          ctx = &context_for(stream, unit.problem_id);
          blobs_ok = ensure_blobs(stream, unit);
        }
        profile_.blob_fetch_s =
            std::max(0.0, fetch_total - profile_.decompress_s);
        if (!blobs_ok) {
          // A referenced blob is gone server-side: a replica finished the
          // unit while our NEED list was in flight. Drop it and ask for
          // fresh work.
          LOG_DEBUG("unit " << unit.unit_id
                            << " references a released blob; dropping");
          continue;
        }

        auto& saturation_counter =
            obs::Registry::global().counter("align.batch_saturations");
        const std::uint64_t saturations_before = saturation_counter.value();
        Stopwatch sw;
        ResultUnit result;
        result.problem_id = unit.problem_id;
        result.unit_id = unit.unit_id;
        result.stage = unit.stage;
        // Echo the lease's term (v6): a result computed for a deposed
        // primary carries its old epoch, and the promoted server fences it.
        result.epoch = unit.epoch;
        result.payload = ctx->algorithm->process(unit);
        profile_.compute_s = sw.seconds();
        profile_.saturations = saturation_counter.value() - saturations_before;
        {
          obs::SpanTimer encode_span(profile_.encode_s);
          if (config_.corrupt_rate > 0 && !result.payload.empty()) {
            // Deterministic per-unit draw: the same donor lies about the
            // same units on every run, so chaos tests are reproducible.
            Rng draw(config_.corrupt_seed ^ name_seed(config_.name) ^
                     (unit.unit_id * 0x9e3779b97f4a7c15ull));
            if (draw.next_double() < config_.corrupt_rate) {
              std::size_t at = static_cast<std::size_t>(
                  draw.next_below(result.payload.size()));
              result.payload[at] ^= std::byte{0x5a};
              LOG_DEBUG("corrupting result for unit " << unit.unit_id);
            }
          }
          // Digest over the bytes actually submitted — a lying donor signs
          // its lie, so the wire check passes and voting has to catch it.
          result.payload_crc = net::crc32(result.payload);
        }
        double compute_s = sw.seconds();
        stats.compute_seconds += compute_s;
        if (config_.throttle > 1.0) {
          // Emulate a slower donor machine by padding compute time. The
          // padding belongs to the compute span — it models a machine for
          // which process() really would have taken that long.
          obs::SpanTimer pad(profile_.compute_s);
          std::this_thread::sleep_for(std::chrono::duration<double>(
              compute_s * (config_.throttle - 1.0)));
        }
        if (config_.crash_after_units >= 0 &&
            stats.units_processed + 1 >=
                static_cast<std::uint64_t>(config_.crash_after_units)) {
          crash_.store(true);
        }
        if (crash_.load()) {
          stats.retry_laters = retry_laters_;
          return stats;  // vanish without submitting
        }
        if (config_.protocol_version >= 5) result.profile = profile_;
        pending = std::move(result);
        resubmitting = false;
      }

      send_message(
          stream,
          encode_submit_result(my_id_.load(), *pending, next_correlation_++,
                               static_cast<std::uint16_t>(config_.protocol_version)));
      net::Message reply = net::read_message(stream);
      if (reply.type == net::MessageType::kRetryLater) {
        // A fail-stop server NACKs submissions so we keep our buffered
        // copy for its replacement; `pending` survives and is retried.
        auto nack = decode_retry_later(reply);
        note_retry_later(nack);
        if (!backoff_wait(nack.retry_after_s)) break;
        continue;
      }
      if (reply.type == net::MessageType::kError) {
        rehello(stream, benchmark);
        continue;  // pending survives; retried under the new id
      }
      auto result_ack = decode_result_ack(reply);
      if (!result_ack.accepted) {
        LOG_DEBUG("result for unit " << pending->unit_id << " was a duplicate");
      }
      if (resubmitting) {
        stats.results_resubmitted += 1;
        resubmitting = false;
      }
      pending.reset();
      stats.units_processed += 1;
    } catch (const IoError& e) {
      if (stop_.load() || crash_.load()) break;
      LOG_WARN("client '" << config_.name << "' lost its session (" << e.what()
                          << "); reconnecting");
      if (pending) resubmitting = true;
      if (!connect_session(stream, benchmark)) {
        session_ok = false;
        break;
      }
      stats.reconnects += 1;
      obs::Registry::global().counter("client.reconnects").inc();
    } catch (const ProtocolError& e) {
      // Corrupt frame (CRC mismatch, torn header): the connection can no
      // longer be trusted mid-stream — drop it and start a clean session.
      if (stop_.load() || crash_.load()) break;
      LOG_WARN("client '" << config_.name << "' got a corrupt frame ("
                          << e.what() << "); reconnecting");
      stream.close();
      if (pending) resubmitting = true;
      if (!connect_session(stream, benchmark)) {
        session_ok = false;
        break;
      }
      stats.reconnects += 1;
      obs::Registry::global().counter("client.reconnects").inc();
    }
  }

  if (!crash_.load() && session_ok && stream.valid()) {
    try {
      send_message(stream, encode_goodbye(my_id_.load(), next_correlation_++));
      stream.shutdown_write();
    } catch (const Error&) {
      // Server may already be gone; departure is best-effort.
    }
  }
  stats.retry_laters = retry_laters_;
  return stats;
}

}  // namespace hdcs::dist
