#include "dist/client.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <thread>

#include "net/bulk.hpp"
#include "obs/metrics.hpp"
#include "util/logging.hpp"
#include "util/stopwatch.hpp"

namespace hdcs::dist {

Client::Client(ClientConfig config) : config_(std::move(config)) {}

double Client::measure_benchmark() {
  // A short fixed numeric loop; the returned "ops/sec" is the same abstract
  // currency DataManagers use for cost_ops, calibrated loosely (one "op" ~
  // one inner-loop iteration of a dynamic-programming cell update).
  Stopwatch sw;
  volatile double acc = 0;
  constexpr std::uint64_t kIters = 2'000'000;
  for (std::uint64_t i = 0; i < kIters; ++i) {
    acc = acc + std::fma(1e-9, static_cast<double>(i & 0xff), 1e-12);
  }
  double secs = sw.seconds();
  if (secs <= 0) secs = 1e-6;
  return static_cast<double>(kIters) / secs;
}

std::vector<ClientRunStats> Client::run_pool(const ClientConfig& base,
                                             int count) {
  if (count < 1) throw InputError("run_pool: count must be >= 1");
  std::vector<ClientRunStats> stats(static_cast<std::size_t>(count));
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    threads.emplace_back([&base, &stats, i] {
      ClientConfig cfg = base;
      cfg.name = base.name + "-cpu" + std::to_string(i);
      try {
        stats[static_cast<std::size_t>(i)] = Client(cfg).run();
      } catch (const Error& e) {
        LOG_WARN("donor pool worker " << cfg.name << " failed: " << e.what());
      }
    });
  }
  for (auto& t : threads) t.join();
  return stats;
}

Client::ProblemContext& Client::context_for(net::TcpStream& stream, ProblemId id) {
  auto it = contexts_.find(id);
  if (it != contexts_.end()) return it->second;

  // First unit of this problem: download the bulk data and build the
  // Algorithm named by the DataManager.
  FetchProblemDataPayload fetch;
  fetch.problem_id = id;
  net::write_message(stream, encode_fetch_problem_data(fetch, next_correlation_++));
  auto header = decode_problem_data_header(net::read_message(stream));
  auto blob = net::recv_blob(stream);
  if (blob.size() != header.data_bytes) {
    throw ProtocolError("problem data size mismatch");
  }
  ProblemContext ctx;
  ctx.algorithm = config_.registry->create(header.algorithm_name);
  ctx.algorithm->initialize(blob);
  if (config_.exec_threads > 1) {
    ctx.algorithm->set_parallelism(config_.exec_threads);
  }
  LOG_INFO("problem " << id << ": fetched " << blob.size()
                      << " bytes, algorithm " << header.algorithm_name);
  return contexts_.emplace(id, std::move(ctx)).first->second;
}

ClientRunStats Client::run() {
  ClientRunStats stats;
  obs::Registry::global().gauge("client.exec_threads")
      .set(static_cast<double>(std::max<std::size_t>(config_.exec_threads, 1)));
  auto stream = net::TcpStream::connect(config_.server_host, config_.server_port);

  HelloPayload hello;
  hello.client_name = config_.name;
  hello.cores = 1;
  hello.benchmark_ops_per_sec = measure_benchmark() / std::max(config_.throttle, 1.0);
  net::write_message(stream, encode_hello(hello, next_correlation_++));
  auto ack = decode_hello_ack(net::read_message(stream));
  ClientId my_id = ack.client_id;
  LOG_INFO("client '" << config_.name << "' registered as id " << my_id);

  // Heartbeats ride a second connection: the work connection is strictly
  // request/response, so it cannot carry liveness while a unit computes.
  std::atomic<bool> heartbeats_done{false};
  std::thread heartbeat_thread;
  if (config_.send_heartbeats && ack.heartbeat_interval_s > 0) {
    heartbeat_thread = std::thread([this, my_id, &heartbeats_done,
                                    interval = ack.heartbeat_interval_s] {
      try {
        auto hb_stream =
            net::TcpStream::connect(config_.server_host, config_.server_port);
        std::uint64_t corr = 1;
        while (!heartbeats_done.load()) {
          net::write_message(hb_stream, encode_heartbeat(my_id, corr++));
          net::Message reply = net::read_message(hb_stream);
          if (reply.type != net::MessageType::kHeartbeatAck) break;
          // Sleep in small slices so shutdown is prompt.
          double slept = 0;
          while (slept < interval && !heartbeats_done.load()) {
            std::this_thread::sleep_for(std::chrono::milliseconds(20));
            slept += 0.02;
          }
        }
        hb_stream.shutdown_write();
      } catch (const Error&) {
        // Heartbeat failures are non-fatal; the work loop notices real
        // connection problems itself.
      }
    });
  }
  struct HeartbeatJoiner {
    std::atomic<bool>& done;
    std::thread& thread;
    ~HeartbeatJoiner() {
      done.store(true);
      if (thread.joinable()) thread.join();
    }
  } joiner{heartbeats_done, heartbeat_thread};

  int consecutive_idle = 0;
  while (!stop_.load() && !crash_.load()) {
    net::write_message(stream, encode_request_work(my_id, next_correlation_++));
    net::Message reply = net::read_message(stream);

    if (reply.type == net::MessageType::kNoWorkAvailable) {
      auto no_work = decode_no_work(reply);
      stats.idle_polls += 1;
      if (config_.exit_when_idle &&
          (no_work.all_problems_complete ||
           ++consecutive_idle >= config_.max_idle_polls)) {
        break;
      }
      std::this_thread::sleep_for(
          std::chrono::duration<double>(no_work.retry_after_s));
      continue;
    }
    if (reply.type == net::MessageType::kShutdown) break;
    if (reply.type == net::MessageType::kError) {
      auto r = reply.reader();
      LOG_WARN("server rejected request: " << r.str()
               << " — leaving (likely expired by the client timeout)");
      return stats;  // no Goodbye: the server already dropped us
    }

    WorkUnit unit = decode_work_assignment(reply);
    consecutive_idle = 0;
    ProblemContext& ctx = context_for(stream, unit.problem_id);

    Stopwatch sw;
    ResultUnit result;
    result.problem_id = unit.problem_id;
    result.unit_id = unit.unit_id;
    result.stage = unit.stage;
    result.payload = ctx.algorithm->process(unit);
    double compute_s = sw.seconds();
    stats.compute_seconds += compute_s;
    if (config_.throttle > 1.0) {
      // Emulate a slower donor machine by padding compute time.
      std::this_thread::sleep_for(
          std::chrono::duration<double>(compute_s * (config_.throttle - 1.0)));
    }
    if (config_.crash_after_units >= 0 &&
        stats.units_processed + 1 >=
            static_cast<std::uint64_t>(config_.crash_after_units)) {
      crash_.store(true);
    }
    if (crash_.load()) return stats;  // vanish without submitting

    net::write_message(stream,
                       encode_submit_result(my_id, result, next_correlation_++));
    auto result_ack = decode_result_ack(net::read_message(stream));
    if (!result_ack.accepted) {
      LOG_DEBUG("result for unit " << unit.unit_id << " was a duplicate");
    }
    stats.units_processed += 1;
  }

  if (!crash_.load()) {
    try {
      net::write_message(stream, encode_goodbye(my_id, next_correlation_++));
      stream.shutdown_write();
    } catch (const IoError&) {
      // Server may already be gone; departure is best-effort.
    }
  }
  return stats;
}

}  // namespace hdcs::dist
