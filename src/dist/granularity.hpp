#pragma once
// Work-unit granularity policies.
//
// "The parallel granularity is dynamically controlled during each search to
// match the processing abilities of the current set of donor machines"
// (paper §3.1); the adaptive strategy itself is the subject of the authors'
// companion paper [12]. Three policies are provided so the ablation bench
// can show why the adaptive one wins on heterogeneous fleets:
//
//   Fixed                 — constant ops per unit (the naive baseline).
//   GuidedSelfScheduling  — remaining / (k * active_clients), the classic
//                           decreasing-chunk loop-scheduling rule.
//   AdaptiveThroughput    — per-client measured rate x target unit duration,
//                           i.e. "each unit should take ~T seconds on the
//                           machine that asked for it" (the paper's scheme).

#include <memory>
#include <string>

namespace hdcs::dist {

/// Scheduler's view of one donor client, passed to the policy.
struct ClientStats {
  double benchmark_ops_per_sec = 0;  // self-reported at Hello
  double ewma_ops_per_sec = 0;       // measured from completed units (0 until first)
  int units_completed = 0;
  int outstanding = 0;
  double last_seen = 0;

  /// Best current estimate of this client's speed.
  [[nodiscard]] double rate_estimate() const {
    return ewma_ops_per_sec > 0 ? ewma_ops_per_sec : benchmark_ops_per_sec;
  }
};

struct GranularityBounds {
  double min_ops = 1e4;
  double max_ops = 1e9;
};

class GranularityPolicy {
 public:
  virtual ~GranularityPolicy() = default;
  [[nodiscard]] virtual std::string name() const = 0;
  /// Desired unit cost for this client right now. `remaining_ops` may be 0
  /// (unknown). The scheduler clamps the result to GranularityBounds.
  [[nodiscard]] virtual double target_ops(const ClientStats& client,
                                          double remaining_ops,
                                          int active_clients) const = 0;
};

class FixedGranularity final : public GranularityPolicy {
 public:
  explicit FixedGranularity(double ops) : ops_(ops) {}
  [[nodiscard]] std::string name() const override { return "fixed"; }
  [[nodiscard]] double target_ops(const ClientStats&, double, int) const override {
    return ops_;
  }

 private:
  double ops_;
};

class GuidedSelfScheduling final : public GranularityPolicy {
 public:
  explicit GuidedSelfScheduling(double k = 2.0) : k_(k) {}
  [[nodiscard]] std::string name() const override { return "guided"; }
  [[nodiscard]] double target_ops(const ClientStats& client, double remaining_ops,
                                  int active_clients) const override;

 private:
  double k_;
};

class AdaptiveThroughput final : public GranularityPolicy {
 public:
  /// target_unit_seconds: how long one unit should keep a donor busy.
  explicit AdaptiveThroughput(double target_unit_seconds = 15.0)
      : target_seconds_(target_unit_seconds) {}
  [[nodiscard]] std::string name() const override { return "adaptive"; }
  [[nodiscard]] double target_ops(const ClientStats& client, double remaining_ops,
                                  int active_clients) const override;
  [[nodiscard]] double target_seconds() const { return target_seconds_; }

 private:
  double target_seconds_;
};

/// Factory from a policy spec string: "fixed:<ops>", "guided[:k]",
/// "adaptive[:seconds]". Throws InputError on unknown specs.
std::unique_ptr<GranularityPolicy> make_policy(const std::string& spec);

}  // namespace hdcs::dist
