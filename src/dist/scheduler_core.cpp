#include "dist/scheduler_core.hpp"

#include <algorithm>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/error.hpp"
#include "util/logging.hpp"

namespace hdcs::dist {

SchedulerCore::SchedulerCore(SchedulerConfig config,
                             std::unique_ptr<GranularityPolicy> policy)
    : config_(config), policy_(std::move(policy)) {
  if (!policy_) throw InputError("SchedulerCore: null granularity policy");
  if (config_.lease_timeout <= 0) throw InputError("lease_timeout must be > 0");
}

ProblemId SchedulerCore::submit_problem(std::shared_ptr<DataManager> dm) {
  if (!dm) throw InputError("submit_problem: null DataManager");
  ProblemId id = next_problem_id_++;
  ProblemState ps;
  ps.dm = std::move(dm);
  problems_.emplace(id, std::move(ps));
  LOG_INFO("problem " << id << " submitted (algorithm="
                      << problems_.at(id).dm->algorithm_name() << ")");
  return id;
}

bool SchedulerCore::problem_complete(ProblemId id) const {
  auto it = problems_.find(id);
  if (it == problems_.end()) throw InputError("unknown problem id");
  return it->second.dm->is_complete();
}

bool SchedulerCore::all_complete() const {
  return std::all_of(problems_.begin(), problems_.end(),
                     [](const auto& kv) { return kv.second.dm->is_complete(); });
}

std::vector<std::byte> SchedulerCore::final_result(ProblemId id) const {
  auto it = problems_.find(id);
  if (it == problems_.end()) throw InputError("unknown problem id");
  if (!it->second.dm->is_complete()) throw Error("problem not complete");
  return it->second.dm->final_result();
}

const DataManager& SchedulerCore::data_manager(ProblemId id) const {
  auto it = problems_.find(id);
  if (it == problems_.end()) throw InputError("unknown problem id");
  return *it->second.dm;
}

std::vector<ProblemId> SchedulerCore::active_problems() const {
  std::vector<ProblemId> out;
  for (const auto& [id, ps] : problems_) {
    if (!ps.dm->is_complete()) out.push_back(id);
  }
  return out;
}

ClientId SchedulerCore::client_joined(const std::string& name,
                                      double benchmark_ops_per_sec, double now) {
  last_now_ = now;
  ClientId id = next_client_id_++;
  ClientState cs;
  cs.self_id = id;
  cs.name = name;
  cs.stats.benchmark_ops_per_sec = benchmark_ops_per_sec;
  cs.stats.last_seen = now;
  clients_.emplace(id, std::move(cs));
  LOG_INFO("client " << id << " (" << name << ") joined, benchmark "
                     << benchmark_ops_per_sec << " ops/s");
  if (tracer_) {
    tracer_->event(now, "client_joined")
        .u64("client", id)
        .str("name", name)
        .num("benchmark_ops_per_sec", benchmark_ops_per_sec);
  }
  return id;
}

void SchedulerCore::client_left(ClientId id, double now) {
  last_now_ = now;
  auto it = clients_.find(id);
  if (it == clients_.end()) return;
  if (!it->second.active) return;  // double Goodbye / timeout race: once only
  it->second.active = false;
  requeue_client_units(id, now, "client_left");
  LOG_INFO("client " << id << " left; outstanding units requeued");
  if (tracer_) {
    tracer_->event(now, "client_left").u64("client", id).str("reason", "goodbye");
  }
}

void SchedulerCore::heartbeat(ClientId id, double now) {
  auto it = clients_.find(id);
  if (it != clients_.end()) it->second.stats.last_seen = now;
}

const ClientStats* SchedulerCore::client_stats(ClientId id) const {
  auto it = clients_.find(id);
  return it == clients_.end() ? nullptr : &it->second.stats;
}

std::vector<ClientInfo> SchedulerCore::all_client_stats() const {
  std::vector<ClientInfo> out;
  out.reserve(clients_.size());
  for (const auto& [id, cs] : clients_) {
    ClientInfo info;
    info.id = id;
    info.name = cs.name;
    info.active = cs.active;
    info.stats = cs.stats;
    out.push_back(std::move(info));
  }
  return out;
}

int SchedulerCore::active_client_count() const {
  int n = 0;
  for (const auto& [_, cs] : clients_) {
    if (cs.active) ++n;
  }
  return n;
}

std::optional<WorkUnit> SchedulerCore::request_work(ClientId client, double now) {
  last_now_ = now;
  auto cit = clients_.find(client);
  if (cit == clients_.end() || !cit->second.active) {
    throw InputError("request_work from unknown/inactive client " +
                     std::to_string(client));
  }
  ClientState& cs = cit->second;
  cs.stats.last_seen = now;

  // 1) Reissue orphaned units first: they are what stage barriers and
  //    problem completion are waiting on.
  for (auto& [pid, ps] : problems_) {
    if (!ps.requeue.empty()) {
      Lease lease = std::move(ps.requeue.front());
      ps.requeue.pop_front();
      lease.owner = client;
      lease.issued_at = now;
      lease.deadline = now + config_.lease_timeout;
      lease.attempt += 1;
      WorkUnit unit = lease.unit;
      int attempt = lease.attempt;
      ps.outstanding[unit.unit_id] = std::move(lease);
      cs.stats.outstanding += 1;
      stats_.units_issued += 1;
      stats_.units_reissued += 1;
      if (tracer_) {
        tracer_->event(now, "unit_reissued")
            .u64("client", client)
            .u64("problem", unit.problem_id)
            .u64("unit", unit.unit_id)
            .u64("stage", unit.stage)
            .num("cost_ops", unit.cost_ops)
            .num("attempt", attempt);
      }
      return unit;
    }
  }

  // 2) Round-robin across active problems for a fresh unit, starting after
  //    the problem that was served most recently so concurrent problems
  //    interleave fairly.
  if (problems_.empty()) {
    stats_.work_requests_unserved += 1;
    return std::nullopt;
  }
  auto start = problems_.upper_bound(rr_cursor_);
  if (start == problems_.end()) start = problems_.begin();
  auto it = start;
  do {
    ProblemState& ps = it->second;
    if (!ps.dm->is_complete()) {
      if (auto unit = issue_from(it->first, ps, cs, now)) {
        rr_cursor_ = it->first;
        return unit;
      }
    }
    ++it;
    if (it == problems_.end()) it = problems_.begin();
  } while (it != start);

  // 3) Nothing fresh anywhere: optionally hedge the end-game by doubling
  //    up on someone else's oldest outstanding unit.
  if (config_.hedge_endgame) {
    it = start;
    do {
      ProblemState& ps = it->second;
      if (!ps.dm->is_complete()) {
        if (auto unit = hedge_from(ps, cs, now)) {
          rr_cursor_ = it->first;
          return unit;
        }
      }
      ++it;
      if (it == problems_.end()) it = problems_.begin();
    } while (it != start);
  }

  stats_.work_requests_unserved += 1;
  return std::nullopt;
}

std::optional<WorkUnit> SchedulerCore::hedge_from(ProblemState& ps,
                                                  ClientState& cs, double now) {
  // Oldest outstanding lease owned by someone else, not hedged out yet.
  auto best = ps.outstanding.end();
  for (auto it = ps.outstanding.begin(); it != ps.outstanding.end(); ++it) {
    if (it->second.owner == cs.self_id) continue;
    if (it->second.attempt > config_.max_hedges_per_unit) continue;
    if (best == ps.outstanding.end() ||
        it->second.issued_at < best->second.issued_at) {
      best = it;
    }
  }
  if (best == ps.outstanding.end()) return std::nullopt;

  // Transfer the lease to the hedger (single lease record per unit; the
  // original owner's late result is still accepted as first-wins).
  Lease lease = best->second;
  auto old_owner = clients_.find(lease.owner);
  if (old_owner != clients_.end() && old_owner->second.stats.outstanding > 0) {
    old_owner->second.stats.outstanding -= 1;
  }
  lease.owner = cs.self_id;
  lease.issued_at = now;
  lease.deadline = now + config_.lease_timeout;
  lease.attempt += 1;
  WorkUnit unit = lease.unit;
  int attempt = lease.attempt;
  best->second = std::move(lease);
  cs.stats.outstanding += 1;
  stats_.units_issued += 1;
  stats_.units_hedged += 1;
  if (tracer_) {
    tracer_->event(now, "unit_hedged")
        .u64("client", cs.self_id)
        .u64("problem", unit.problem_id)
        .u64("unit", unit.unit_id)
        .u64("stage", unit.stage)
        .num("cost_ops", unit.cost_ops)
        .num("attempt", attempt);
  }
  return unit;
}

std::optional<WorkUnit> SchedulerCore::issue_from(ProblemId pid, ProblemState& ps,
                                                  ClientState& cs, double now) {
  SizeHint hint;
  double target = policy_->target_ops(cs.stats, ps.dm->remaining_ops_estimate(),
                                      active_client_count());
  hint.target_ops =
      std::clamp(target, config_.bounds.min_ops, config_.bounds.max_ops);

  auto unit = ps.dm->next_unit(hint);
  if (!unit) {
    // Incomplete but dry: a stage barrier is holding fresh units back.
    // Emit once per dry spell so staged traces show barrier entry without
    // one event per idle poll.
    if (tracer_ && !ps.barrier_flagged && !ps.dm->is_complete()) {
      ps.barrier_flagged = true;
      tracer_->event(now, "stage_barrier")
          .u64("problem", pid)
          .num("outstanding", static_cast<double>(ps.outstanding.size()) +
                                  static_cast<double>(ps.requeue.size()));
    }
    return std::nullopt;
  }
  ps.barrier_flagged = false;
  if (unit->cost_ops <= 0) {
    throw Error("DataManager produced unit with non-positive cost_ops");
  }
  unit->problem_id = pid;
  unit->unit_id = ps.next_unit_id++;

  Lease lease;
  lease.unit = *unit;
  lease.owner = cs.self_id;
  lease.issued_at = now;
  lease.deadline = now + config_.lease_timeout;
  ps.outstanding[unit->unit_id] = lease;
  cs.stats.outstanding += 1;
  stats_.units_issued += 1;
  if (tracer_) {
    tracer_->event(now, "unit_issued")
        .u64("client", cs.self_id)
        .u64("problem", pid)
        .u64("unit", unit->unit_id)
        .u64("stage", unit->stage)
        .num("cost_ops", unit->cost_ops);
  }
  return unit;
}

bool SchedulerCore::submit_result(ClientId client, const ResultUnit& result,
                                  double now) {
  last_now_ = now;
  auto cit = clients_.find(client);
  if (cit != clients_.end()) cit->second.stats.last_seen = now;

  auto drop = [&](const char* reason) {
    if (tracer_) {
      tracer_->event(now, "result_duplicate")
          .u64("client", client)
          .u64("problem", result.problem_id)
          .u64("unit", result.unit_id)
          .str("reason", reason);
    }
    return false;
  };

  auto pit = problems_.find(result.problem_id);
  if (pit == problems_.end()) {
    stats_.stale_results_dropped += 1;
    return drop("unknown_problem");
  }
  ProblemState& ps = pit->second;

  if (ps.completed.count(result.unit_id)) {
    stats_.duplicate_results_dropped += 1;
    return drop("duplicate");
  }

  double elapsed = -1;  // unknown unless this client held the live lease
  double cost_ops = 0;
  auto lit = ps.outstanding.find(result.unit_id);
  if (lit == ps.outstanding.end()) {
    // Not completed, not outstanding: could be sitting in the requeue after
    // a lease expiry — the original owner finished late. Accept it and
    // drop the requeued copy.
    auto rit = std::find_if(ps.requeue.begin(), ps.requeue.end(),
                            [&](const Lease& l) {
                              return l.unit.unit_id == result.unit_id;
                            });
    if (rit == ps.requeue.end()) {
      // Quarantined poison units are never reissued, but a genuine late
      // result rescues one.
      auto qit = ps.quarantined.find(result.unit_id);
      if (qit == ps.quarantined.end()) {
        stats_.stale_results_dropped += 1;
        return drop("stale");
      }
      cost_ops = qit->second.unit.cost_ops;
      ps.quarantined.erase(qit);
    } else {
      cost_ops = rit->unit.cost_ops;
      ps.requeue.erase(rit);
    }
  } else {
    const Lease& lease = lit->second;
    cost_ops = lease.unit.cost_ops;
    // Update the owner's throughput estimate from this unit's turnaround.
    if (lease.owner == client && cit != clients_.end()) {
      elapsed = now - lease.issued_at;
      if (elapsed > 1e-9) {
        double rate = lease.unit.cost_ops / elapsed;
        ClientStats& st = cit->second.stats;
        st.ewma_ops_per_sec = st.ewma_ops_per_sec <= 0
                                  ? rate
                                  : config_.ewma_alpha * rate +
                                        (1 - config_.ewma_alpha) * st.ewma_ops_per_sec;
      }
    }
    // Decrement outstanding count on whichever client holds the lease.
    auto oit = clients_.find(lit->second.owner);
    if (oit != clients_.end() && oit->second.stats.outstanding > 0) {
      oit->second.stats.outstanding -= 1;
    }
    ps.outstanding.erase(lit);
  }

  ps.completed.insert(result.unit_id);
  if (cit != clients_.end()) cit->second.stats.units_completed += 1;
  stats_.results_accepted += 1;
  if (tracer_) {
    auto ev = tracer_->event(now, "unit_completed");
    ev.u64("client", client)
        .u64("problem", result.problem_id)
        .u64("unit", result.unit_id)
        .u64("stage", result.stage)
        .num("cost_ops", cost_ops);
    if (elapsed >= 0) ev.num("elapsed_s", elapsed);
  }
  ps.dm->accept_result(result);
  return true;
}

void SchedulerCore::tick(double now) {
  last_now_ = now;
  // Expire leases.
  for (auto& [pid, ps] : problems_) {
    for (auto it = ps.outstanding.begin(); it != ps.outstanding.end();) {
      if (it->second.deadline <= now) {
        LOG_WARN("lease expired for problem " << pid << " unit "
                                              << it->first << " (attempt "
                                              << it->second.attempt << ")");
        auto oit = clients_.find(it->second.owner);
        if (oit != clients_.end() && oit->second.stats.outstanding > 0) {
          oit->second.stats.outstanding -= 1;
        }
        fail_lease(pid, ps, std::move(it->second), now, "lease_expired");
        it = ps.outstanding.erase(it);
      } else {
        ++it;
      }
    }
  }
  // Expire silent clients.
  if (config_.client_timeout > 0) {
    for (auto& [cid, cs] : clients_) {
      if (cs.active && now - cs.stats.last_seen > config_.client_timeout) {
        LOG_WARN("client " << cid << " (" << cs.name << ") timed out");
        cs.active = false;
        requeue_client_units(cid, now, "client_timeout");
        stats_.clients_expired += 1;
        if (tracer_) {
          tracer_->event(now, "client_left")
              .u64("client", cid)
              .str("reason", "timeout");
        }
      }
    }
  }
}

void SchedulerCore::checkpoint(ByteWriter& w) const {
  if (tracer_) {
    tracer_->event(last_now_, "checkpoint")
        .u64("problems", problems_.size())
        .u64("units_in_flight", in_flight_units());
  }
  auto write_lease = [&w](const Lease& l) {
    w.u64(l.unit.unit_id);
    w.u32(l.unit.stage);
    w.f64(l.unit.cost_ops);
    w.bytes(l.unit.payload);
    w.u32(static_cast<std::uint32_t>(l.attempt));
  };
  w.u64(next_client_id_);
  w.u32(static_cast<std::uint32_t>(problems_.size()));
  for (const auto& [pid, ps] : problems_) {
    w.u64(pid);
    ByteWriter dm_state;
    ps.dm->snapshot(dm_state);
    w.bytes(dm_state.data());
    w.u64(ps.next_unit_id);
    std::vector<std::uint64_t> completed(ps.completed.begin(), ps.completed.end());
    w.u64_vec(completed);

    // In-flight work: everything requeued or leased gets persisted with
    // its payload (and attempt count, so the quarantine cap survives the
    // restart) and is simply re-delivered afterwards.
    w.u32(static_cast<std::uint32_t>(ps.requeue.size() + ps.outstanding.size()));
    for (const auto& lease : ps.requeue) write_lease(lease);
    for (const auto& [uid, lease] : ps.outstanding) write_lease(lease);
    w.u32(static_cast<std::uint32_t>(ps.quarantined.size()));
    for (const auto& [uid, lease] : ps.quarantined) write_lease(lease);
  }
}

std::size_t SchedulerCore::restore(ByteReader& r) {
  std::uint64_t saved_next_client = r.u64();
  std::uint32_t count = r.u32();
  if (count != problems_.size()) {
    throw ProtocolError("restore: checkpoint has " + std::to_string(count) +
                        " problems, core has " + std::to_string(problems_.size()));
  }
  auto read_lease = [&r](ProblemId pid) {
    Lease lease;
    lease.unit.problem_id = pid;
    lease.unit.unit_id = r.u64();
    lease.unit.stage = r.u32();
    lease.unit.cost_ops = r.f64();
    lease.unit.payload = r.bytes();
    lease.attempt = static_cast<int>(r.u32());
    return lease;
  };
  std::size_t requeued = 0;
  std::size_t quarantined = 0;
  for (std::uint32_t i = 0; i < count; ++i) {
    ProblemId pid = r.u64();
    auto it = problems_.find(pid);
    if (it == problems_.end()) {
      throw ProtocolError("restore: unknown problem id " + std::to_string(pid));
    }
    ProblemState& ps = it->second;
    if (!ps.requeue.empty() || !ps.outstanding.empty() || !ps.completed.empty()) {
      throw ProtocolError("restore: problem " + std::to_string(pid) +
                          " already has progress");
    }
    auto dm_state = r.bytes();
    ByteReader dm_reader{std::span<const std::byte>(dm_state)};
    ps.dm->restore(dm_reader);
    dm_reader.expect_end();
    ps.next_unit_id = r.u64() + kRestoreIdGap;
    for (auto uid : r.u64_vec()) ps.completed.insert(uid);

    std::uint32_t units = r.u32();
    for (std::uint32_t u = 0; u < units; ++u) {
      ps.requeue.push_back(read_lease(pid));
      requeued += 1;
    }
    std::uint32_t q = r.u32();
    for (std::uint32_t u = 0; u < q; ++u) {
      Lease lease = read_lease(pid);
      UnitId uid = lease.unit.unit_id;
      ps.quarantined.emplace(uid, std::move(lease));
      quarantined += 1;
    }
  }
  // Client ids jump the same gap as unit ids: a heartbeat or result frame
  // carrying a pre-crash client id must read as unknown, not as some newly
  // registered donor.
  next_client_id_ = std::max(next_client_id_, saved_next_client + kRestoreIdGap);
  obs::Registry::global()
      .counter("checkpoint.restore_units_requeued")
      .inc(requeued);
  if (tracer_) {
    tracer_->event(last_now_, "checkpoint_restored")
        .u64("problems", count)
        .u64("units_requeued", requeued)
        .u64("units_quarantined", quarantined);
  }
  return requeued;
}

void SchedulerCore::requeue_client_units(ClientId id, double now,
                                         const char* reason) {
  for (auto& [pid, ps] : problems_) {
    for (auto it = ps.outstanding.begin(); it != ps.outstanding.end();) {
      if (it->second.owner == id) {
        fail_lease(pid, ps, std::move(it->second), now, reason);
        it = ps.outstanding.erase(it);
      } else {
        ++it;
      }
    }
  }
  auto cit = clients_.find(id);
  if (cit != clients_.end()) cit->second.stats.outstanding = 0;
}

void SchedulerCore::fail_lease(ProblemId pid, ProblemState& ps, Lease&& lease,
                               double now, const char* reason) {
  if (config_.max_attempts_per_unit > 0 &&
      lease.attempt >= config_.max_attempts_per_unit) {
    LOG_WARN("quarantining poison unit " << lease.unit.unit_id << " of problem "
                                         << pid << " after " << lease.attempt
                                         << " failed attempts (" << reason
                                         << ")");
    stats_.units_quarantined += 1;
    if (tracer_) {
      tracer_->event(now, "unit_quarantined")
          .u64("problem", pid)
          .u64("unit", lease.unit.unit_id)
          .u64("stage", lease.unit.stage)
          .num("cost_ops", lease.unit.cost_ops)
          .num("attempts", lease.attempt)
          .str("reason", reason);
    }
    UnitId uid = lease.unit.unit_id;
    ps.quarantined.emplace(uid, std::move(lease));
    return;
  }
  ps.requeue.push_back(std::move(lease));
}

std::size_t SchedulerCore::in_flight_units() const {
  std::size_t n = 0;
  for (const auto& [pid, ps] : problems_) {
    n += ps.requeue.size() + ps.outstanding.size();
  }
  return n;
}

}  // namespace hdcs::dist
