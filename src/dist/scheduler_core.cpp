#include "dist/scheduler_core.hpp"

#include <algorithm>

#include "net/bulk.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/error.hpp"
#include "util/logging.hpp"

namespace hdcs::dist {

namespace {
/// Fleet-wide per-phase latency histograms, fed from every v5 span profile
/// the scheduler merges. Process-global registry so the MSG_STATS snapshot
/// (and hdcs_top's phase-breakdown columns) see them without plumbing.
struct ProfileHistograms {
  obs::Histogram& queue_wait;
  obs::Histogram& blob_fetch;
  obs::Histogram& decompress;
  obs::Histogram& compute;
  obs::Histogram& encode;
  obs::Histogram& submit;
};
ProfileHistograms& profile_histograms() {
  auto& reg = obs::Registry::global();
  static ProfileHistograms h{
      reg.histogram("unit.queue_wait_s"), reg.histogram("unit.blob_fetch_s"),
      reg.histogram("unit.decompress_s"), reg.histogram("unit.compute_s"),
      reg.histogram("unit.encode_s"),     reg.histogram("unit.submit_s")};
  return h;
}
}  // namespace

SchedulerCore::SchedulerCore(SchedulerConfig config,
                             std::unique_ptr<GranularityPolicy> policy)
    : config_(config),
      policy_(std::move(policy)),
      integrity_rng_(config.integrity_seed) {
  if (!policy_) throw InputError("SchedulerCore: null granularity policy");
  if (config_.lease_timeout <= 0) throw InputError("lease_timeout must be > 0");
  if (config_.replication_factor < 1) {
    throw InputError("replication_factor must be >= 1");
  }
  if (config_.quorum < 0 || config_.quorum > config_.replication_factor) {
    throw InputError("quorum must be in [0, replication_factor]");
  }
  if (config_.spot_check_rate < 0 || config_.spot_check_rate > 1) {
    throw InputError("spot_check_rate must be in [0, 1]");
  }
  if (config_.reputation_alpha <= 0 || config_.reputation_alpha > 1) {
    throw InputError("reputation_alpha must be in (0, 1]");
  }
  if (config_.max_tie_breakers < 0) {
    throw InputError("max_tie_breakers must be >= 0");
  }
}

ProblemId SchedulerCore::submit_problem(std::shared_ptr<DataManager> dm) {
  if (!dm) throw InputError("submit_problem: null DataManager");
  ProblemId id = next_problem_id_++;
  ProblemState ps;
  ps.dm = std::move(dm);
  // Intern the problem data as a pinned blob: v4 donors address it by
  // digest like any other blob, and the serving path never re-encodes it.
  auto data = ps.dm->problem_data();
  ps.data_bytes = data.size();
  ps.data_digest = net::blob_digest(data);
  BlobEntry& entry = blob_store_[ps.data_digest];
  if (!entry.bytes) {
    entry.bytes =
        std::make_shared<const std::vector<std::byte>>(std::move(data));
  }
  entry.pinned = true;
  problems_.emplace(id, std::move(ps));
  LOG_INFO("problem " << id << " submitted (algorithm="
                      << problems_.at(id).dm->algorithm_name() << ")");
  return id;
}

std::shared_ptr<const std::vector<std::byte>> SchedulerCore::blob_bytes(
    std::uint64_t digest) const {
  auto it = blob_store_.find(digest);
  return it == blob_store_.end() ? nullptr : it->second.bytes;
}

std::uint64_t SchedulerCore::problem_data_digest(ProblemId id) const {
  auto it = problems_.find(id);
  if (it == problems_.end()) throw InputError("unknown problem id");
  return it->second.data_digest;
}

std::uint64_t SchedulerCore::problem_data_bytes(ProblemId id) const {
  auto it = problems_.find(id);
  if (it == problems_.end()) throw InputError("unknown problem id");
  return it->second.data_bytes;
}

void SchedulerCore::materialize_unit_blobs(WorkUnit& unit) const {
  for (WorkBlob& blob : unit.blobs) {
    auto bytes = blob_bytes(blob.digest);
    if (!bytes) {
      throw ProtocolError("materialize_unit_blobs: unknown blob digest " +
                          std::to_string(blob.digest));
    }
    blob.bytes = *bytes;
  }
}

void SchedulerCore::intern_unit_blobs(WorkUnit& unit) {
  for (WorkBlob& blob : unit.blobs) {
    if (!blob.bytes.empty()) {
      blob.digest = net::blob_digest(blob.bytes);
      blob.size = blob.bytes.size();
      BlobEntry& entry = blob_store_[blob.digest];
      if (!entry.bytes) {
        entry.bytes = std::make_shared<const std::vector<std::byte>>(
            std::move(blob.bytes));
      }
      entry.refs += 1;
      blob.bytes = {};
    } else {
      auto it = blob_store_.find(blob.digest);
      if (it == blob_store_.end()) {
        throw ProtocolError("unit references unknown blob digest " +
                            std::to_string(blob.digest));
      }
      it->second.refs += 1;
    }
  }
}

void SchedulerCore::release_unit_blobs(const WorkUnit& unit) {
  for (const WorkBlob& blob : unit.blobs) {
    auto it = blob_store_.find(blob.digest);
    if (it == blob_store_.end()) continue;
    it->second.refs -= 1;
    if (it->second.refs <= 0 && !it->second.pinned) blob_store_.erase(it);
  }
}

bool SchedulerCore::problem_complete(ProblemId id) const {
  auto it = problems_.find(id);
  if (it == problems_.end()) throw InputError("unknown problem id");
  return it->second.dm->is_complete();
}

bool SchedulerCore::all_complete() const {
  return std::all_of(problems_.begin(), problems_.end(),
                     [](const auto& kv) { return kv.second.dm->is_complete(); });
}

std::vector<std::byte> SchedulerCore::final_result(ProblemId id) const {
  auto it = problems_.find(id);
  if (it == problems_.end()) throw InputError("unknown problem id");
  if (!it->second.dm->is_complete()) throw Error("problem not complete");
  return it->second.dm->final_result();
}

const DataManager& SchedulerCore::data_manager(ProblemId id) const {
  auto it = problems_.find(id);
  if (it == problems_.end()) throw InputError("unknown problem id");
  return *it->second.dm;
}

std::vector<ProblemId> SchedulerCore::active_problems() const {
  std::vector<ProblemId> out;
  for (const auto& [id, ps] : problems_) {
    if (!ps.dm->is_complete()) out.push_back(id);
  }
  return out;
}

ClientId SchedulerCore::client_joined(const std::string& name,
                                      double benchmark_ops_per_sec, double now) {
  last_now_ = now;
  ClientId id = next_client_id_++;
  ClientState cs;
  cs.self_id = id;
  cs.name = name;
  cs.stats.benchmark_ops_per_sec = benchmark_ops_per_sec;
  cs.stats.last_seen = now;
  clients_.emplace(id, std::move(cs));
  LOG_INFO("client " << id << " (" << name << ") joined, benchmark "
                     << benchmark_ops_per_sec << " ops/s");
  if (tracer_) {
    tracer_->event(now, "client_joined")
        .u64("client", id)
        .str("name", name)
        .num("benchmark_ops_per_sec", benchmark_ops_per_sec);
  }
  return id;
}

void SchedulerCore::client_left(ClientId id, double now) {
  last_now_ = now;
  auto it = clients_.find(id);
  if (it == clients_.end()) return;
  if (!it->second.active) return;  // double Goodbye / timeout race: once only
  it->second.active = false;
  requeue_client_units(id, now, "client_left");
  LOG_INFO("client " << id << " left; outstanding units requeued");
  if (tracer_) {
    tracer_->event(now, "client_left").u64("client", id).str("reason", "goodbye");
  }
}

void SchedulerCore::heartbeat(ClientId id, double now) {
  auto it = clients_.find(id);
  if (it != clients_.end()) it->second.stats.last_seen = now;
}

const ClientStats* SchedulerCore::client_stats(ClientId id) const {
  auto it = clients_.find(id);
  return it == clients_.end() ? nullptr : &it->second.stats;
}

std::vector<ClientInfo> SchedulerCore::all_client_stats() const {
  std::vector<ClientInfo> out;
  out.reserve(clients_.size());
  for (const auto& [id, cs] : clients_) {
    ClientInfo info;
    info.id = id;
    info.name = cs.name;
    info.active = cs.active;
    info.stats = cs.stats;
    if (auto rit = reputation_.find(cs.name); rit != reputation_.end()) {
      info.reputation = rit->second.score;
      info.blacklisted = rit->second.blacklisted;
      info.vote_wins = rit->second.vote_wins;
      info.vote_losses = rit->second.vote_losses;
    }
    out.push_back(std::move(info));
  }
  return out;
}

int SchedulerCore::active_client_count() const {
  int n = 0;
  for (const auto& [_, cs] : clients_) {
    if (cs.active) ++n;
  }
  return n;
}

const DonorReputation* SchedulerCore::reputation(const std::string& name) const {
  auto it = reputation_.find(name);
  return it == reputation_.end() ? nullptr : &it->second;
}

std::string SchedulerCore::voter_name(ClientId id) const {
  auto it = clients_.find(id);
  return it == clients_.end() ? "#" + std::to_string(id) : it->second.name;
}

bool SchedulerCore::is_trusted(const std::string& name) const {
  auto it = reputation_.find(name);
  if (it == reputation_.end()) return false;  // unknown donors start untrusted
  return !it->second.blacklisted &&
         it->second.score >= config_.reputation_trust_threshold;
}

bool SchedulerCore::is_blacklisted(const std::string& name) const {
  auto it = reputation_.find(name);
  return it != reputation_.end() && it->second.blacklisted;
}

int SchedulerCore::effective_quorum() const {
  return config_.quorum > 0 ? config_.quorum
                            : config_.replication_factor / 2 + 1;
}

void SchedulerCore::release_lease_stat(ClientId owner) {
  auto it = clients_.find(owner);
  if (it != clients_.end() && it->second.stats.outstanding > 0) {
    it->second.stats.outstanding -= 1;
  }
}

std::optional<WorkUnit> SchedulerCore::request_work(ClientId client, double now) {
  last_now_ = now;
  auto cit = clients_.find(client);
  if (cit == clients_.end() || !cit->second.active) {
    throw InputError("request_work from unknown/inactive client " +
                     std::to_string(client));
  }
  ClientState& cs = cit->second;
  cs.stats.last_seen = now;

  // A blacklisted donor gets nothing: its results would be rejected anyway,
  // and handing it replicas would waste honest donors' votes.
  if (is_blacklisted(cs.name)) {
    stats_.work_requests_unserved += 1;
    return std::nullopt;
  }

  // Per-client in-flight budget: over-leased clients wait for their own
  // backlog to drain before getting more.
  if (config_.max_outstanding_per_client > 0 &&
      cs.stats.outstanding >= config_.max_outstanding_per_client) {
    stats_.work_requests_unserved += 1;
    return std::nullopt;
  }

  // 1) Queued copies first — reissues of failed units and missing replicas
  //    are what stage barriers and pending votes are waiting on.
  for (auto& [pid, ps] : problems_) {
    if (auto unit = serve_queued(pid, ps, cs, now)) return unit;
  }

  // 2) Round-robin across active problems for a fresh unit, starting after
  //    the problem that was served most recently so concurrent problems
  //    interleave fairly.
  if (problems_.empty()) {
    stats_.work_requests_unserved += 1;
    return std::nullopt;
  }
  auto start = problems_.upper_bound(rr_cursor_);
  if (start == problems_.end()) start = problems_.begin();
  auto it = start;
  do {
    ProblemState& ps = it->second;
    if (!ps.dm->is_complete()) {
      if (auto unit = issue_from(it->first, ps, cs, now)) {
        rr_cursor_ = it->first;
        return unit;
      }
    }
    ++it;
    if (it == problems_.end()) it = problems_.begin();
  } while (it != start);

  // 3) Nothing fresh anywhere: optionally hedge the end-game by doubling
  //    up on someone else's oldest outstanding unit.
  if (config_.hedge_endgame) {
    it = start;
    do {
      ProblemState& ps = it->second;
      if (!ps.dm->is_complete()) {
        if (auto unit = hedge_from(it->first, ps, cs, now)) {
          rr_cursor_ = it->first;
          return unit;
        }
      }
      ++it;
      if (it == problems_.end()) it = problems_.begin();
    } while (it != start);
  }

  stats_.work_requests_unserved += 1;
  return std::nullopt;
}

std::optional<WorkUnit> SchedulerCore::serve_queued(ProblemId pid,
                                                    ProblemState& ps,
                                                    ClientState& cs, double now) {
  // Bounded single pass: each entry is popped once; entries this client is
  // not eligible for (it already holds a copy, or its name already voted)
  // go back to the queue for someone else.
  std::size_t scan = ps.issue_queue.size();
  for (std::size_t i = 0; i < scan; ++i) {
    QueueEntry entry = ps.issue_queue.front();
    ps.issue_queue.pop_front();
    auto uit = ps.in_flight.find(entry.uid);
    if (uit == ps.in_flight.end()) continue;  // unit resolved meanwhile: stale
    UnitState& us = uit->second;
    if (us.holds_lease(cs.self_id) || us.votes.count(cs.name)) {
      ps.issue_queue.push_back(entry);  // replicas must go to distinct donors
      continue;
    }
    us.queued -= 1;
    us.leases.push_back(Replica{cs.self_id, now, now + config_.lease_timeout,
                                /*hedge=*/false});
    cs.stats.outstanding += 1;
    stats_.units_issued += 1;
    if (entry.reissue) {
      us.attempt += 1;
      stats_.units_reissued += 1;
      if (tracer_) {
        tracer_->event(now, "unit_reissued")
            .u64("client", cs.self_id)
            .u64("problem", pid)
            .u64("unit", us.unit.unit_id)
            .u64("stage", us.unit.stage)
            .num("cost_ops", us.unit.cost_ops)
            .num("attempt", us.attempt);
      }
    } else {
      stats_.replicas_issued += 1;
      if (tracer_) {
        tracer_->event(now, "replica_issued")
            .u64("client", cs.self_id)
            .u64("problem", pid)
            .u64("unit", us.unit.unit_id)
            .u64("stage", us.unit.stage)
            .num("cost_ops", us.unit.cost_ops);
      }
    }
    WorkUnit unit = us.unit;
    unit.epoch = epoch_;  // lease carries the current term (v6 fencing)
    apply_replication_policy(pid, ps, us, cs, now);
    return unit;
  }
  return std::nullopt;
}

std::optional<WorkUnit> SchedulerCore::hedge_from(ProblemId pid, ProblemState& ps,
                                                  ClientState& cs, double now) {
  // Oldest outstanding unit (by its earliest live lease) this client does
  // not already hold or have voted on, still under the hedge cap.
  auto best = ps.in_flight.end();
  double best_issued = 0;
  for (auto it = ps.in_flight.begin(); it != ps.in_flight.end(); ++it) {
    UnitState& us = it->second;
    if (us.leases.empty()) continue;  // queued or mid-vote, not hedgeable
    if (us.hedges >= config_.max_hedges_per_unit) continue;
    if (us.holds_lease(cs.self_id) || us.votes.count(cs.name)) continue;
    double oldest = us.leases.front().issued_at;
    for (const auto& l : us.leases) oldest = std::min(oldest, l.issued_at);
    if (best == ps.in_flight.end() || oldest < best_issued) {
      best = it;
      best_issued = oldest;
    }
  }
  if (best == ps.in_flight.end()) return std::nullopt;

  UnitState& us = best->second;
  us.hedges += 1;
  us.leases.push_back(Replica{cs.self_id, now, now + config_.lease_timeout,
                              /*hedge=*/true});
  cs.stats.outstanding += 1;
  stats_.units_issued += 1;
  stats_.units_hedged += 1;
  if (tracer_) {
    tracer_->event(now, "unit_hedged")
        .u64("client", cs.self_id)
        .u64("problem", pid)
        .u64("unit", us.unit.unit_id)
        .u64("stage", us.unit.stage)
        .num("cost_ops", us.unit.cost_ops)
        .num("attempt", us.attempt + us.hedges);
  }
  WorkUnit unit = us.unit;
  unit.epoch = epoch_;
  apply_replication_policy(pid, ps, us, cs, now);
  return unit;
}

std::optional<WorkUnit> SchedulerCore::issue_from(ProblemId pid, ProblemState& ps,
                                                  ClientState& cs, double now) {
  SizeHint hint;
  double target = policy_->target_ops(cs.stats, ps.dm->remaining_ops_estimate(),
                                      active_client_count());
  hint.target_ops =
      std::clamp(target, config_.bounds.min_ops, config_.bounds.max_ops);

  auto unit = ps.dm->next_unit(hint);
  if (!unit) {
    // Incomplete but dry: a stage barrier is holding fresh units back.
    // Emit once per dry spell so staged traces show barrier entry without
    // one event per idle poll.
    if (tracer_ && !ps.barrier_flagged && !ps.dm->is_complete()) {
      ps.barrier_flagged = true;
      tracer_->event(now, "stage_barrier")
          .u64("problem", pid)
          .num("outstanding", static_cast<double>(ps.in_flight.size()));
    }
    return std::nullopt;
  }
  ps.barrier_flagged = false;
  if (unit->cost_ops <= 0) {
    throw Error("DataManager produced unit with non-positive cost_ops");
  }
  unit->problem_id = pid;
  unit->unit_id = ps.next_unit_id++;
  unit->epoch = epoch_;
  // Bytes move into the content-addressed store; the stored UnitState and
  // the returned assignment both carry only {digest, size} references.
  intern_unit_blobs(*unit);

  UnitState us;
  us.unit = *unit;
  us.leases.push_back(Replica{cs.self_id, now, now + config_.lease_timeout,
                              /*hedge=*/false});
  auto [uit, inserted] = ps.in_flight.emplace(unit->unit_id, std::move(us));
  cs.stats.outstanding += 1;
  stats_.units_issued += 1;
  if (tracer_) {
    tracer_->event(now, "unit_issued")
        .u64("client", cs.self_id)
        .u64("problem", pid)
        .u64("unit", unit->unit_id)
        .u64("stage", unit->stage)
        .num("cost_ops", unit->cost_ops);
  }
  apply_replication_policy(pid, ps, uit->second, cs, now);
  return unit;
}

void SchedulerCore::apply_replication_policy(ProblemId pid, ProblemState& ps,
                                             UnitState& us,
                                             const ClientState& cs, double now) {
  if (config_.replication_factor < 2) return;  // integrity layer disabled
  if (us.replicas_wanted > 1 || !us.votes.empty()) return;  // already voting
  bool replicate = true;
  bool spot = false;
  if (is_trusted(cs.name)) {
    // Proven donors run un-replicated, minus a seeded random audit.
    spot = integrity_rng_.next_double() < config_.spot_check_rate;
    replicate = spot;
  }
  if (!replicate) return;
  us.replicas_wanted = config_.replication_factor;
  us.quorum_needed = effective_quorum();
  us.spot_check = spot;
  if (spot) stats_.spot_checks += 1;
  stats_.units_replicated += 1;
  int need = us.replicas_wanted - us.live_copies();
  if (need > 0) queue_copies(ps, us, need, /*reissue=*/false);
  if (tracer_) {
    tracer_->event(now, "unit_replicated")
        .u64("problem", pid)
        .u64("unit", us.unit.unit_id)
        .u64("replicas", static_cast<std::uint64_t>(us.replicas_wanted))
        .u64("quorum", static_cast<std::uint64_t>(us.quorum_needed))
        .boolean("spot_check", spot);
  }
}

void SchedulerCore::queue_copies(ProblemState& ps, UnitState& us, int copies,
                                 bool reissue) {
  for (int i = 0; i < copies; ++i) {
    ps.issue_queue.push_back(QueueEntry{us.unit.unit_id, reissue});
    us.queued += 1;
  }
}

bool SchedulerCore::submit_result(ClientId client, const ResultUnit& result,
                                  double now) {
  last_now_ = now;
  auto cit = clients_.find(client);
  if (cit != clients_.end()) cit->second.stats.last_seen = now;
  std::string voter = voter_name(client);

  if (is_blacklisted(voter)) {
    stats_.results_rejected_blacklisted += 1;
    if (tracer_) {
      tracer_->event(now, "result_rejected")
          .u64("problem", result.problem_id)
          .u64("unit", result.unit_id)
          .str("name", voter)
          .str("reason", "blacklisted");
    }
    return false;
  }

  // Epoch fence (protocol v6): a lease stamped with an older term was
  // issued by a server incarnation this core has superseded — a deposed
  // primary, or a pre-recovery life whose unsynced tail may have reused
  // ids. Its results must never merge. Epoch 0 is a legacy (pre-v6)
  // donor: no fence, the kRestoreIdGap machinery still protects it.
  if (result.epoch != 0 && result.epoch != epoch_) {
    stats_.results_rejected_stale_epoch += 1;
    LOG_WARN("result from client " << client << " (" << voter
                                   << ") fenced: lease epoch " << result.epoch
                                   << " != current " << epoch_);
    if (tracer_) {
      tracer_->event(now, "result_rejected")
          .u64("problem", result.problem_id)
          .u64("unit", result.unit_id)
          .str("name", voter)
          .str("reason", "stale_epoch");
    }
    return false;
  }

  auto drop = [&](const char* reason) {
    if (tracer_) {
      tracer_->event(now, "result_duplicate")
          .u64("client", client)
          .u64("problem", result.problem_id)
          .u64("unit", result.unit_id)
          .str("reason", reason);
    }
    return false;
  };

  auto pit = problems_.find(result.problem_id);
  if (pit == problems_.end()) {
    stats_.stale_results_dropped += 1;
    return drop("unknown_problem");
  }
  ProblemId pid = pit->first;
  ProblemState& ps = pit->second;

  if (ps.completed.count(result.unit_id)) {
    stats_.duplicate_results_dropped += 1;
    return drop("duplicate");
  }

  // Transport-level certification: the digest the donor computed over the
  // payload it produced must match the bytes that arrived. A mismatch is a
  // corrupt donor (or a corrupt path the frame CRC somehow missed) — the
  // submitting donor's lease is failed, the result never reaches a vote.
  // Digest 0 means "not supplied" (an old donor); the payload still goes
  // through replication voting, just without the cheap self-check.
  std::uint32_t digest = net::crc32(std::span<const std::byte>(result.payload));
  if (result.payload_crc != 0 && result.payload_crc != digest) {
    stats_.results_rejected_digest += 1;
    LOG_WARN("result digest mismatch from client " << client << " ("
                                                   << voter << ") for unit "
                                                   << result.unit_id);
    if (tracer_) {
      tracer_->event(now, "result_rejected")
          .u64("problem", result.problem_id)
          .u64("unit", result.unit_id)
          .str("name", voter)
          .str("reason", "digest_mismatch");
    }
    auto uit = ps.in_flight.find(result.unit_id);
    if (uit != ps.in_flight.end()) {
      UnitState& us = uit->second;
      for (auto lit = us.leases.begin(); lit != us.leases.end(); ++lit) {
        if (lit->owner == client) {
          Replica lost = *lit;
          us.leases.erase(lit);
          release_lease_stat(client);
          if (fail_replica(pid, ps, us, lost, now, "digest_mismatch")) {
            move_to_quarantine(pid, ps, result.unit_id, now, "digest_mismatch");
          }
          break;
        }
      }
    }
    return false;
  }

  auto uit = ps.in_flight.find(result.unit_id);
  if (uit == ps.in_flight.end()) {
    // Quarantined poison units are never reissued, but a genuine late
    // result still reaches them: un-replicated units are rescued outright,
    // replicated ones re-enter the vote.
    auto qit = ps.quarantined.find(result.unit_id);
    if (qit == ps.quarantined.end()) {
      stats_.stale_results_dropped += 1;
      return drop("stale");
    }
    auto node = ps.quarantined.extract(qit);
    uit = ps.in_flight.insert(std::move(node)).position;
  }
  UnitState& us = uit->second;

  // Remove this client's lease (if it held one) and fold the turnaround
  // into its throughput estimate.
  double elapsed = -1;  // unknown unless this client held a live lease
  for (auto lit = us.leases.begin(); lit != us.leases.end(); ++lit) {
    if (lit->owner != client) continue;
    elapsed = now - lit->issued_at;
    if (elapsed > 1e-9 && cit != clients_.end()) {
      double rate = us.unit.cost_ops / elapsed;
      ClientStats& st = cit->second.stats;
      st.ewma_ops_per_sec =
          st.ewma_ops_per_sec <= 0
              ? rate
              : config_.ewma_alpha * rate +
                    (1 - config_.ewma_alpha) * st.ewma_ops_per_sec;
    }
    us.leases.erase(lit);
    release_lease_stat(client);
    break;
  }

  // v5 donors ship a span profile with the result. Merge it with the lease
  // timeline: the donor measured durations only (no clock sync), so the
  // scheduler derives the submit/server-side residual as elapsed minus the
  // donor's spans (clamped — the donor's queue_wait starts slightly before
  // the lease clock does). Skipped when no live lease matched (elapsed
  // unknown: the lease expired or the donor re-registered mid-unit).
  if (result.profile && elapsed >= 0) {
    const obs::UnitProfile& prof = *result.profile;
    double submit_s = std::max(0.0, elapsed - prof.total_s());
    auto& h = profile_histograms();
    h.queue_wait.observe(prof.queue_wait_s);
    h.blob_fetch.observe(prof.blob_fetch_s);
    h.decompress.observe(prof.decompress_s);
    h.compute.observe(prof.compute_s);
    h.encode.observe(prof.encode_s);
    h.submit.observe(submit_s);
    if (tracer_) {
      tracer_->event(now, "unit_profile")
          .u64("client", client)
          .u64("problem", result.problem_id)
          .u64("unit", result.unit_id)
          .u64("stage", result.stage)
          .num("elapsed_s", elapsed)
          .num("queue_wait_s", prof.queue_wait_s)
          .num("blob_fetch_s", prof.blob_fetch_s)
          .num("decompress_s", prof.decompress_s)
          .num("compute_s", prof.compute_s)
          .num("encode_s", prof.encode_s)
          .num("submit_s", submit_s)
          .u64("threads", prof.threads)
          .u64("saturations", prof.saturations);
    }
  }

  if (us.replicas_wanted <= 1 && us.votes.empty()) {
    // Un-replicated fast path: first result wins, exactly the pre-voting
    // scheduler. Surviving hedge copies are cancelled.
    for (const auto& l : us.leases) release_lease_stat(l.owner);
    double cost_ops = us.unit.cost_ops;
    release_unit_blobs(us.unit);
    ps.in_flight.erase(uit);  // queued copies become stale queue entries
    ps.completed.insert(result.unit_id);
    if (cit != clients_.end()) cit->second.stats.units_completed += 1;
    stats_.results_accepted += 1;
    if (tracer_) {
      auto ev = tracer_->event(now, "unit_completed");
      ev.u64("client", client)
          .u64("problem", result.problem_id)
          .u64("unit", result.unit_id)
          .u64("stage", result.stage)
          .num("cost_ops", cost_ops);
      if (elapsed >= 0) ev.num("elapsed_s", elapsed);
    }
    ps.dm->accept_result(result);
    return true;
  }

  return record_vote(pid, ps, result.unit_id, client, voter, digest, result,
                     now);
}

bool SchedulerCore::record_vote(ProblemId pid, ProblemState& ps, UnitId uid,
                                ClientId client, const std::string& voter,
                                std::uint32_t digest, const ResultUnit& result,
                                double now) {
  UnitState& us = ps.in_flight.at(uid);
  if (us.votes.count(voter)) {
    stats_.duplicate_results_dropped += 1;
    if (tracer_) {
      tracer_->event(now, "result_duplicate")
          .u64("client", client)
          .u64("problem", pid)
          .u64("unit", uid)
          .str("reason", "duplicate_vote");
    }
    return false;
  }
  us.votes.emplace(voter, digest);
  us.payload_by_digest.emplace(digest, result.payload);  // first copy wins
  stats_.votes_recorded += 1;
  int agreeing = 0;
  for (const auto& [name, d] : us.votes) {
    if (d == digest) ++agreeing;
  }
  if (tracer_) {
    tracer_->event(now, "vote_recorded")
        .u64("client", client)
        .u64("problem", pid)
        .u64("unit", uid)
        .u64("digest", digest)
        .u64("votes", us.votes.size());
  }
  if (agreeing >= us.quorum_needed) {
    auto payload = std::move(us.payload_by_digest.at(digest));
    accept_unit(pid, ps, uid, client, digest, std::move(payload), now);
    return true;
  }
  if (us.leases.empty() && us.queued == 0) {
    // Every copy answered and no digest has quorum: the donors disagree.
    stats_.vote_mismatches += 1;
    us.tie_breakers += 1;
    if (tracer_) {
      tracer_->event(now, "vote_mismatch")
          .u64("problem", pid)
          .u64("unit", uid)
          .u64("votes", us.votes.size())
          .u64("tie_breakers", static_cast<std::uint64_t>(us.tie_breakers));
    }
    if (us.tie_breakers > config_.max_tie_breakers) {
      move_to_quarantine(pid, ps, uid, now, "vote_unresolvable");
    } else {
      queue_copies(ps, us, 1, /*reissue=*/false);
    }
  }
  return true;
}

void SchedulerCore::accept_unit(ProblemId pid, ProblemState& ps, UnitId uid,
                                ClientId client, std::uint32_t winning_digest,
                                std::vector<std::byte> payload, double now) {
  auto node = ps.in_flight.extract(uid);
  UnitState us = std::move(node.mapped());
  release_unit_blobs(us.unit);
  ps.completed.insert(uid);
  stats_.results_accepted += 1;
  stats_.vote_quorums += 1;
  auto cit = clients_.find(client);
  if (cit != clients_.end()) cit->second.stats.units_completed += 1;
  // Donors still holding a copy neither win nor lose — their leases are
  // simply cancelled (their queued copies turn into stale queue entries).
  for (const auto& l : us.leases) release_lease_stat(l.owner);
  int winners = 0;
  for (const auto& [name, d] : us.votes) {
    if (d == winning_digest) ++winners;
  }
  if (tracer_) {
    tracer_->event(now, "vote_quorum")
        .u64("problem", pid)
        .u64("unit", uid)
        .u64("digest", winning_digest)
        .u64("votes", static_cast<std::uint64_t>(winners));
    tracer_->event(now, "unit_completed")
        .u64("client", client)
        .u64("problem", pid)
        .u64("unit", uid)
        .u64("stage", us.unit.stage)
        .num("cost_ops", us.unit.cost_ops);
  }
  for (const auto& [name, d] : us.votes) {
    bool won = d == winning_digest;
    if (!won) {
      stats_.results_rejected_mismatch += 1;
      LOG_WARN("donor '" << name << "' lost digest vote on unit " << uid
                         << " of problem " << pid);
      if (tracer_) {
        tracer_->event(now, "result_rejected")
            .u64("problem", pid)
            .u64("unit", uid)
            .str("name", name)
            .str("reason", "vote_lost");
      }
    }
    settle_vote(name, won, now);
  }
  ResultUnit canonical;
  canonical.problem_id = pid;
  canonical.unit_id = uid;
  canonical.stage = us.unit.stage;
  canonical.payload = std::move(payload);
  canonical.payload_crc = winning_digest;
  ps.dm->accept_result(canonical);
}

void SchedulerCore::settle_vote(const std::string& name, bool won, double now) {
  auto& rep = reputation_[name];
  if (won) {
    rep.vote_wins += 1;
  } else {
    rep.vote_losses += 1;
  }
  rep.score = (1 - config_.reputation_alpha) * rep.score +
              config_.reputation_alpha * (won ? 1.0 : 0.0);
  if (!won && !rep.blacklisted && config_.blacklist_after > 0 &&
      rep.vote_losses >= static_cast<std::uint64_t>(config_.blacklist_after)) {
    rep.blacklisted = true;
    stats_.donors_blacklisted += 1;
    LOG_WARN("donor '" << name << "' blacklisted after " << rep.vote_losses
                       << " lost votes");
    if (tracer_) {
      tracer_->event(now, "donor_blacklisted")
          .str("name", name)
          .u64("losses", rep.vote_losses)
          .num("score", rep.score);
    }
  }
}

void SchedulerCore::tick(double now) {
  last_now_ = now;
  // Expire leases.
  for (auto& [pid, ps] : problems_) {
    std::vector<UnitId> to_quarantine;
    for (auto& [uid, us] : ps.in_flight) {
      bool quarantine = false;
      for (auto lit = us.leases.begin(); lit != us.leases.end();) {
        if (lit->deadline <= now) {
          Replica lost = *lit;
          lit = us.leases.erase(lit);
          release_lease_stat(lost.owner);
          LOG_WARN("lease expired for problem " << pid << " unit " << uid
                                                << " (attempt " << us.attempt
                                                << ")");
          quarantine |= fail_replica(pid, ps, us, lost, now, "lease_expired");
        } else {
          ++lit;
        }
      }
      if (quarantine) to_quarantine.push_back(uid);
    }
    for (UnitId uid : to_quarantine) {
      move_to_quarantine(pid, ps, uid, now, "lease_expired");
    }
  }
  // Expire silent clients.
  if (config_.client_timeout > 0) {
    for (auto& [cid, cs] : clients_) {
      if (cs.active && now - cs.stats.last_seen > config_.client_timeout) {
        LOG_WARN("client " << cid << " (" << cs.name << ") timed out");
        cs.active = false;
        requeue_client_units(cid, now, "client_timeout");
        stats_.clients_expired += 1;
        if (tracer_) {
          tracer_->event(now, "client_left")
              .u64("client", cid)
              .str("reason", "timeout");
        }
      }
    }
  }
  // Evict long-departed client rows so a fleet of reconnecting donors
  // cannot grow the table without bound. Aggregates are preserved.
  if (config_.client_retention_s > 0) {
    for (auto it = clients_.begin(); it != clients_.end();) {
      const ClientState& cs = it->second;
      if (!cs.active && cs.stats.outstanding == 0 &&
          now - cs.stats.last_seen > config_.client_retention_s) {
        evicted_units_completed_ +=
            static_cast<std::uint64_t>(cs.stats.units_completed);
        stats_.clients_evicted += 1;
        if (tracer_) {
          tracer_->event(now, "client_evicted")
              .u64("client", it->first)
              .str("name", cs.name);
        }
        it = clients_.erase(it);
      } else {
        ++it;
      }
    }
  }
}

void SchedulerCore::requeue_client_units(ClientId id, double now,
                                         const char* reason) {
  for (auto& [pid, ps] : problems_) {
    std::vector<UnitId> to_quarantine;
    for (auto& [uid, us] : ps.in_flight) {
      for (auto lit = us.leases.begin(); lit != us.leases.end(); ++lit) {
        if (lit->owner != id) continue;
        Replica lost = *lit;
        us.leases.erase(lit);
        if (fail_replica(pid, ps, us, lost, now, reason)) {
          to_quarantine.push_back(uid);
        }
        break;  // a client holds at most one lease per unit
      }
    }
    for (UnitId uid : to_quarantine) {
      move_to_quarantine(pid, ps, uid, now, reason);
    }
  }
  auto cit = clients_.find(id);
  if (cit != clients_.end()) cit->second.stats.outstanding = 0;
}

bool SchedulerCore::fail_replica(ProblemId pid, ProblemState& ps, UnitState& us,
                                 const Replica& lost, double now,
                                 const char* reason) {
  (void)pid;
  (void)now;
  (void)reason;
  if (us.live_copies() == 0) {
    // The unit's last copy is gone (recorded votes count as live — they
    // already delivered). This is the legacy single-lease failure: it
    // burns an attempt toward quarantine and requeues one reissue copy.
    if (config_.max_attempts_per_unit > 0 &&
        us.attempt >= config_.max_attempts_per_unit) {
      return true;  // caller quarantines (we may be mid-iteration)
    }
    queue_copies(ps, us, 1, /*reissue=*/true);
    return false;
  }
  // Sibling copies are still live. A lost hedge is dropped for free; a
  // lost replica is replaced so the vote can still reach quorum. Neither
  // burns an attempt — losing a *copy* must not quarantine a healthy unit.
  if (lost.hedge) return false;
  int need = us.replicas_wanted - us.live_copies();
  if (need > 0) queue_copies(ps, us, need, /*reissue=*/false);
  return false;
}

void SchedulerCore::move_to_quarantine(ProblemId pid, ProblemState& ps,
                                       UnitId uid, double now,
                                       const char* reason) {
  auto node = ps.in_flight.extract(uid);
  if (node.empty()) return;
  UnitState& us = node.mapped();
  for (const auto& l : us.leases) release_lease_stat(l.owner);
  us.leases.clear();
  us.queued = 0;  // surviving queue entries are dropped as stale at serve
  LOG_WARN("quarantining poison unit " << uid << " of problem " << pid
                                       << " after " << us.attempt
                                       << " failed attempts (" << reason
                                       << ")");
  stats_.units_quarantined += 1;
  if (tracer_) {
    tracer_->event(now, "unit_quarantined")
        .u64("problem", pid)
        .u64("unit", uid)
        .u64("stage", us.unit.stage)
        .num("cost_ops", us.unit.cost_ops)
        .num("attempts", us.attempt)
        .str("reason", reason);
  }
  ps.quarantined.emplace(uid, std::move(node.mapped()));
}

void SchedulerCore::checkpoint(ByteWriter& w) const {
  if (tracer_) {
    tracer_->event(last_now_, "checkpoint")
        .u64("problems", problems_.size())
        .u64("units_in_flight", in_flight_units());
  }
  auto write_unit = [&w](const UnitState& us) {
    w.u64(us.unit.unit_id);
    w.u32(us.unit.stage);
    w.f64(us.unit.cost_ops);
    w.bytes(us.unit.payload);
    w.u32(static_cast<std::uint32_t>(us.unit.blobs.size()));
    for (const WorkBlob& blob : us.unit.blobs) {
      w.u64(blob.digest);
      w.u64(blob.size);
    }
    w.u32(static_cast<std::uint32_t>(us.attempt));
    w.u32(static_cast<std::uint32_t>(us.replicas_wanted));
    w.u32(static_cast<std::uint32_t>(us.quorum_needed));
    w.u32(static_cast<std::uint32_t>(us.tie_breakers));
    w.boolean(us.spot_check);
    w.u32(static_cast<std::uint32_t>(us.votes.size()));
    for (const auto& [name, digest] : us.votes) {
      w.str(name);
      w.u32(digest);
    }
    w.u32(static_cast<std::uint32_t>(us.payload_by_digest.size()));
    for (const auto& [digest, payload] : us.payload_by_digest) {
      w.u32(digest);
      w.bytes(payload);
    }
  };
  w.u64(epoch_);
  w.u64(next_client_id_);
  // Blob table: bytes for every digest referenced by a persisted unit.
  // Pinned problem-data blobs are excluded — they are re-interned when the
  // problems are re-submitted before restore().
  std::map<std::uint64_t, const std::vector<std::byte>*> blob_table;
  for (const auto& [pid, ps] : problems_) {
    auto collect = [&](const std::map<UnitId, UnitState>& units) {
      for (const auto& [uid, us] : units) {
        for (const WorkBlob& blob : us.unit.blobs) {
          auto it = blob_store_.find(blob.digest);
          if (it != blob_store_.end() && !it->second.pinned) {
            blob_table.emplace(blob.digest, it->second.bytes.get());
          }
        }
      }
    };
    collect(ps.in_flight);
    collect(ps.quarantined);
  }
  w.u32(static_cast<std::uint32_t>(blob_table.size()));
  for (const auto& [digest, bytes] : blob_table) {
    w.u64(digest);
    w.bytes(*bytes);
  }
  w.u32(static_cast<std::uint32_t>(problems_.size()));
  for (const auto& [pid, ps] : problems_) {
    w.u64(pid);
    ByteWriter dm_state;
    ps.dm->snapshot(dm_state);
    w.bytes(dm_state.data());
    w.u64(ps.next_unit_id);
    std::vector<std::uint64_t> completed(ps.completed.begin(), ps.completed.end());
    w.u64_vec(completed);

    // In-flight work: every incomplete issued unit is persisted with its
    // payload, attempt count, and any partial digest votes (with the
    // candidate payloads), so a restart resumes the vote instead of
    // re-trusting a single donor.
    w.u32(static_cast<std::uint32_t>(ps.in_flight.size()));
    for (const auto& [uid, us] : ps.in_flight) write_unit(us);
    w.u32(static_cast<std::uint32_t>(ps.quarantined.size()));
    for (const auto& [uid, us] : ps.quarantined) write_unit(us);
  }
  // The reputation ledger survives restarts: a liar must not launder its
  // record by crashing the server.
  w.u32(static_cast<std::uint32_t>(reputation_.size()));
  for (const auto& [name, rep] : reputation_) {
    w.str(name);
    w.f64(rep.score);
    w.u64(rep.vote_wins);
    w.u64(rep.vote_losses);
    w.boolean(rep.blacklisted);
  }
}

std::size_t SchedulerCore::restore(ByteReader& r) {
  std::uint64_t saved_epoch = r.u64();
  std::uint64_t saved_next_client = r.u64();
  // Re-intern the checkpointed blob table before any unit references it.
  std::uint32_t blob_count = r.u32();
  for (std::uint32_t i = 0; i < blob_count; ++i) {
    std::uint64_t digest = r.u64();
    auto bytes = r.bytes();
    BlobEntry& entry = blob_store_[digest];
    if (!entry.bytes) {
      entry.bytes =
          std::make_shared<const std::vector<std::byte>>(std::move(bytes));
    }
  }
  std::uint32_t count = r.u32();
  if (count != problems_.size()) {
    throw ProtocolError("restore: checkpoint has " + std::to_string(count) +
                        " problems, core has " + std::to_string(problems_.size()));
  }
  auto read_unit = [this, &r](ProblemId pid) {
    UnitState us;
    us.unit.problem_id = pid;
    us.unit.unit_id = r.u64();
    us.unit.stage = r.u32();
    us.unit.cost_ops = r.f64();
    us.unit.payload = r.bytes();
    std::uint32_t blobs = r.u32();
    us.unit.blobs.reserve(blobs);
    for (std::uint32_t b = 0; b < blobs; ++b) {
      WorkBlob blob;
      blob.digest = r.u64();
      blob.size = r.u64();
      us.unit.blobs.push_back(std::move(blob));
    }
    intern_unit_blobs(us.unit);  // byte-less refs: bump store refcounts
    us.attempt = static_cast<int>(r.u32());
    us.replicas_wanted = static_cast<int>(r.u32());
    us.quorum_needed = static_cast<int>(r.u32());
    us.tie_breakers = static_cast<int>(r.u32());
    us.spot_check = r.boolean();
    std::uint32_t votes = r.u32();
    for (std::uint32_t v = 0; v < votes; ++v) {
      std::string name = r.str();
      std::uint32_t digest = r.u32();
      us.votes.emplace(std::move(name), digest);
    }
    std::uint32_t payloads = r.u32();
    for (std::uint32_t p = 0; p < payloads; ++p) {
      std::uint32_t digest = r.u32();
      us.payload_by_digest.emplace(digest, r.bytes());
    }
    return us;
  };
  std::size_t requeued = 0;
  std::size_t quarantined = 0;
  for (std::uint32_t i = 0; i < count; ++i) {
    ProblemId pid = r.u64();
    auto it = problems_.find(pid);
    if (it == problems_.end()) {
      throw ProtocolError("restore: unknown problem id " + std::to_string(pid));
    }
    ProblemState& ps = it->second;
    if (!ps.in_flight.empty() || !ps.issue_queue.empty() ||
        !ps.completed.empty()) {
      throw ProtocolError("restore: problem " + std::to_string(pid) +
                          " already has progress");
    }
    auto dm_state = r.bytes();
    ByteReader dm_reader{std::span<const std::byte>(dm_state)};
    ps.dm->restore(dm_reader);
    dm_reader.expect_end();
    ps.next_unit_id = r.u64() + kRestoreIdGap;
    for (auto uid : r.u64_vec()) ps.completed.insert(uid);

    std::uint32_t units = r.u32();
    for (std::uint32_t u = 0; u < units; ++u) {
      UnitState us = read_unit(pid);
      UnitId uid = us.unit.unit_id;
      // Queue the copies the unit is still owed: everything for a fresh
      // vote, the missing voters for a vote already underway, and always
      // at least one (the pending tie-breaker case). The first copy of an
      // un-voted unit counts as a reissue so the quarantine cap still sees
      // pre-crash attempts.
      int copies = std::max(
          us.replicas_wanted - static_cast<int>(us.votes.size()), 1);
      auto [uit, inserted] = ps.in_flight.emplace(uid, std::move(us));
      UnitState& ref = uit->second;
      if (ref.votes.empty()) {
        queue_copies(ps, ref, 1, /*reissue=*/true);
        copies -= 1;
      }
      if (copies > 0) queue_copies(ps, ref, copies, /*reissue=*/false);
      requeued += 1;
    }
    std::uint32_t q = r.u32();
    for (std::uint32_t u = 0; u < q; ++u) {
      UnitState us = read_unit(pid);
      UnitId uid = us.unit.unit_id;
      ps.quarantined.emplace(uid, std::move(us));
      quarantined += 1;
    }
  }
  std::uint32_t reps = r.u32();
  for (std::uint32_t i = 0; i < reps; ++i) {
    std::string name = r.str();
    DonorReputation rep;
    rep.score = r.f64();
    rep.vote_wins = r.u64();
    rep.vote_losses = r.u64();
    rep.blacklisted = r.boolean();
    reputation_[std::move(name)] = rep;
  }
  // Client ids jump the same gap as unit ids: a heartbeat or result frame
  // carrying a pre-crash client id must read as unknown, not as some newly
  // registered donor.
  next_client_id_ = std::max(next_client_id_, saved_next_client + kRestoreIdGap);
  // Crash recovery enters a new term: leases handed out by the dead
  // incarnation (post-checkpoint, so unknown to us) are fenced by epoch in
  // addition to the id gap above.
  epoch_ = std::max(epoch_, saved_epoch) + 1;
  obs::Registry::global()
      .counter("checkpoint.restore_units_requeued")
      .inc(requeued);
  if (tracer_) {
    tracer_->event(last_now_, "checkpoint_restored")
        .u64("problems", count)
        .u64("units_requeued", requeued)
        .u64("units_quarantined", quarantined);
  }
  return requeued;
}

// ---- exact snapshot / restore ------------------------------------------
//
// Unlike checkpoint()/restore() above (which deliberately requeue leases
// and gap the id counters), this pair transfers *every* member verbatim so
// a standby replaying the primary's WAL lands in the identical state.
// Containers are ordered maps, so serialisation order — and therefore the
// snapshot bytes — is a pure function of state: byte-equal snapshots <=>
// equal cores. config_/policy_/tracer_ are runtime wiring, supplied by the
// restoring host, and deliberately excluded.

namespace {
constexpr std::uint32_t kExactSnapshotMagic = 0x48455853;  // "XSEH"
constexpr std::uint32_t kExactSnapshotVersion = 1;
}  // namespace

void SchedulerCore::bump_epoch(std::uint64_t new_epoch) {
  if (new_epoch <= epoch_) {
    throw ProtocolError("bump_epoch: term " + std::to_string(new_epoch) +
                        " does not advance current " + std::to_string(epoch_));
  }
  epoch_ = new_epoch;
  if (tracer_) {
    tracer_->event(last_now_, "epoch_bumped").u64("epoch", epoch_);
  }
}

void SchedulerCore::snapshot_exact(ByteWriter& w) const {
  auto write_stats = [&w](const ClientStats& st) {
    w.f64(st.benchmark_ops_per_sec);
    w.f64(st.ewma_ops_per_sec);
    w.i32(st.units_completed);
    w.i32(st.outstanding);
    w.f64(st.last_seen);
  };
  auto write_unit = [&w](const UnitState& us) {
    w.u64(us.unit.problem_id);
    w.u64(us.unit.unit_id);
    w.u32(us.unit.stage);
    w.f64(us.unit.cost_ops);
    w.u64(us.unit.epoch);
    w.bytes(us.unit.payload);
    w.u32(static_cast<std::uint32_t>(us.unit.blobs.size()));
    for (const WorkBlob& blob : us.unit.blobs) {
      w.u64(blob.digest);
      w.u64(blob.size);
    }
    w.i32(us.attempt);
    w.i32(us.hedges);
    w.i32(us.replicas_wanted);
    w.i32(us.quorum_needed);
    w.i32(us.tie_breakers);
    w.boolean(us.spot_check);
    w.i32(us.queued);
    w.u32(static_cast<std::uint32_t>(us.leases.size()));
    for (const Replica& l : us.leases) {
      w.u64(l.owner);
      w.f64(l.issued_at);
      w.f64(l.deadline);
      w.boolean(l.hedge);
    }
    w.u32(static_cast<std::uint32_t>(us.votes.size()));
    for (const auto& [name, digest] : us.votes) {
      w.str(name);
      w.u32(digest);
    }
    w.u32(static_cast<std::uint32_t>(us.payload_by_digest.size()));
    for (const auto& [digest, payload] : us.payload_by_digest) {
      w.u32(digest);
      w.bytes(payload);
    }
  };

  w.u32(kExactSnapshotMagic);
  w.u32(kExactSnapshotVersion);
  w.u64(epoch_);
  w.u64(next_problem_id_);
  w.u64(next_client_id_);
  w.u64(rr_cursor_);
  w.f64(last_now_);
  w.u64(evicted_units_completed_);

  const SchedulerStats& s = stats_;
  w.u64(s.units_issued);
  w.u64(s.units_reissued);
  w.u64(s.units_hedged);
  w.u64(s.results_accepted);
  w.u64(s.duplicate_results_dropped);
  w.u64(s.stale_results_dropped);
  w.u64(s.work_requests_unserved);
  w.u64(s.clients_expired);
  w.u64(s.units_quarantined);
  w.u64(s.units_replicated);
  w.u64(s.replicas_issued);
  w.u64(s.spot_checks);
  w.u64(s.votes_recorded);
  w.u64(s.vote_quorums);
  w.u64(s.vote_mismatches);
  w.u64(s.results_rejected_mismatch);
  w.u64(s.results_rejected_digest);
  w.u64(s.results_rejected_blacklisted);
  w.u64(s.donors_blacklisted);
  w.u64(s.clients_evicted);
  w.u64(s.results_rejected_stale_epoch);

  Rng::State rng = integrity_rng_.state();
  for (std::uint64_t word : rng.s) w.u64(word);
  w.f64(rng.spare);
  w.boolean(rng.has_spare);

  w.u32(static_cast<std::uint32_t>(blob_store_.size()));
  for (const auto& [digest, entry] : blob_store_) {
    w.u64(digest);
    w.i32(entry.refs);
    w.boolean(entry.pinned);
    w.bytes(*entry.bytes);
  }

  w.u32(static_cast<std::uint32_t>(clients_.size()));
  for (const auto& [id, cs] : clients_) {
    w.u64(id);
    w.str(cs.name);
    w.boolean(cs.active);
    write_stats(cs.stats);
  }

  w.u32(static_cast<std::uint32_t>(reputation_.size()));
  for (const auto& [name, rep] : reputation_) {
    w.str(name);
    w.f64(rep.score);
    w.u64(rep.vote_wins);
    w.u64(rep.vote_losses);
    w.boolean(rep.blacklisted);
  }

  w.u32(static_cast<std::uint32_t>(problems_.size()));
  for (const auto& [pid, ps] : problems_) {
    w.u64(pid);
    ByteWriter dm_state;
    ps.dm->snapshot(dm_state);
    w.bytes(dm_state.data());
    w.u64(ps.next_unit_id);
    w.boolean(ps.barrier_flagged);
    w.u64(ps.data_digest);
    w.u64(ps.data_bytes);
    std::vector<std::uint64_t> completed(ps.completed.begin(),
                                         ps.completed.end());
    w.u64_vec(completed);
    w.u32(static_cast<std::uint32_t>(ps.in_flight.size()));
    for (const auto& [uid, us] : ps.in_flight) write_unit(us);
    w.u32(static_cast<std::uint32_t>(ps.quarantined.size()));
    for (const auto& [uid, us] : ps.quarantined) write_unit(us);
    w.u32(static_cast<std::uint32_t>(ps.issue_queue.size()));
    for (const QueueEntry& e : ps.issue_queue) {
      w.u64(e.uid);
      w.boolean(e.reissue);
    }
  }
}

void SchedulerCore::restore_exact(ByteReader& r) {
  if (r.u32() != kExactSnapshotMagic) {
    throw ProtocolError("restore_exact: bad snapshot magic");
  }
  if (std::uint32_t v = r.u32(); v != kExactSnapshotVersion) {
    throw ProtocolError("restore_exact: unsupported snapshot version " +
                        std::to_string(v));
  }
  auto read_stats = [&r]() {
    ClientStats st;
    st.benchmark_ops_per_sec = r.f64();
    st.ewma_ops_per_sec = r.f64();
    st.units_completed = r.i32();
    st.outstanding = r.i32();
    st.last_seen = r.f64();
    return st;
  };
  auto read_unit = [&r]() {
    UnitState us;
    us.unit.problem_id = r.u64();
    us.unit.unit_id = r.u64();
    us.unit.stage = r.u32();
    us.unit.cost_ops = r.f64();
    us.unit.epoch = r.u64();
    us.unit.payload = r.bytes();
    std::uint32_t blobs = r.u32();
    us.unit.blobs.reserve(blobs);
    for (std::uint32_t b = 0; b < blobs; ++b) {
      WorkBlob blob;
      blob.digest = r.u64();
      blob.size = r.u64();
      us.unit.blobs.push_back(std::move(blob));
    }
    us.attempt = r.i32();
    us.hedges = r.i32();
    us.replicas_wanted = r.i32();
    us.quorum_needed = r.i32();
    us.tie_breakers = r.i32();
    us.spot_check = r.boolean();
    us.queued = r.i32();
    std::uint32_t leases = r.u32();
    us.leases.reserve(leases);
    for (std::uint32_t l = 0; l < leases; ++l) {
      Replica rep;
      rep.owner = r.u64();
      rep.issued_at = r.f64();
      rep.deadline = r.f64();
      rep.hedge = r.boolean();
      us.leases.push_back(rep);
    }
    std::uint32_t votes = r.u32();
    for (std::uint32_t v = 0; v < votes; ++v) {
      std::string name = r.str();
      std::uint32_t digest = r.u32();
      us.votes.emplace(std::move(name), digest);
    }
    std::uint32_t payloads = r.u32();
    for (std::uint32_t p = 0; p < payloads; ++p) {
      std::uint32_t digest = r.u32();
      us.payload_by_digest.emplace(digest, r.bytes());
    }
    return us;
  };

  epoch_ = r.u64();
  next_problem_id_ = r.u64();
  next_client_id_ = r.u64();
  rr_cursor_ = r.u64();
  last_now_ = r.f64();
  evicted_units_completed_ = r.u64();

  SchedulerStats s;
  s.units_issued = r.u64();
  s.units_reissued = r.u64();
  s.units_hedged = r.u64();
  s.results_accepted = r.u64();
  s.duplicate_results_dropped = r.u64();
  s.stale_results_dropped = r.u64();
  s.work_requests_unserved = r.u64();
  s.clients_expired = r.u64();
  s.units_quarantined = r.u64();
  s.units_replicated = r.u64();
  s.replicas_issued = r.u64();
  s.spot_checks = r.u64();
  s.votes_recorded = r.u64();
  s.vote_quorums = r.u64();
  s.vote_mismatches = r.u64();
  s.results_rejected_mismatch = r.u64();
  s.results_rejected_digest = r.u64();
  s.results_rejected_blacklisted = r.u64();
  s.donors_blacklisted = r.u64();
  s.clients_evicted = r.u64();
  s.results_rejected_stale_epoch = r.u64();
  stats_ = s;

  Rng::State rng;
  for (auto& word : rng.s) word = r.u64();
  rng.spare = r.f64();
  rng.has_spare = r.boolean();
  integrity_rng_.set_state(rng);

  blob_store_.clear();
  std::uint32_t blob_count = r.u32();
  for (std::uint32_t i = 0; i < blob_count; ++i) {
    std::uint64_t digest = r.u64();
    BlobEntry entry;
    entry.refs = r.i32();
    entry.pinned = r.boolean();
    entry.bytes = std::make_shared<const std::vector<std::byte>>(r.bytes());
    blob_store_.emplace(digest, std::move(entry));
  }

  clients_.clear();
  std::uint32_t client_count = r.u32();
  for (std::uint32_t i = 0; i < client_count; ++i) {
    ClientState cs;
    ClientId id = r.u64();
    cs.self_id = id;
    cs.name = r.str();
    cs.active = r.boolean();
    cs.stats = read_stats();
    clients_.emplace(id, std::move(cs));
  }

  reputation_.clear();
  std::uint32_t rep_count = r.u32();
  for (std::uint32_t i = 0; i < rep_count; ++i) {
    std::string name = r.str();
    DonorReputation rep;
    rep.score = r.f64();
    rep.vote_wins = r.u64();
    rep.vote_losses = r.u64();
    rep.blacklisted = r.boolean();
    reputation_.emplace(std::move(name), rep);
  }

  std::uint32_t problem_count = r.u32();
  if (problem_count != problems_.size()) {
    throw ProtocolError("restore_exact: snapshot has " +
                        std::to_string(problem_count) + " problems, core has " +
                        std::to_string(problems_.size()));
  }
  for (std::uint32_t i = 0; i < problem_count; ++i) {
    ProblemId pid = r.u64();
    auto it = problems_.find(pid);
    if (it == problems_.end()) {
      throw ProtocolError("restore_exact: unknown problem id " +
                          std::to_string(pid));
    }
    ProblemState& ps = it->second;
    auto dm_state = r.bytes();
    ByteReader dm_reader{std::span<const std::byte>(dm_state)};
    ps.dm->restore(dm_reader);
    dm_reader.expect_end();
    ps.next_unit_id = r.u64();
    ps.barrier_flagged = r.boolean();
    ps.data_digest = r.u64();
    ps.data_bytes = r.u64();
    ps.completed.clear();
    for (auto uid : r.u64_vec()) ps.completed.insert(uid);
    ps.in_flight.clear();
    std::uint32_t units = r.u32();
    for (std::uint32_t u = 0; u < units; ++u) {
      UnitState us = read_unit();
      UnitId uid = us.unit.unit_id;
      ps.in_flight.emplace(uid, std::move(us));
    }
    ps.quarantined.clear();
    std::uint32_t q = r.u32();
    for (std::uint32_t u = 0; u < q; ++u) {
      UnitState us = read_unit();
      UnitId uid = us.unit.unit_id;
      ps.quarantined.emplace(uid, std::move(us));
    }
    ps.issue_queue.clear();
    std::uint32_t queue = r.u32();
    for (std::uint32_t e = 0; e < queue; ++e) {
      QueueEntry entry;
      entry.uid = r.u64();
      entry.reissue = r.boolean();
      ps.issue_queue.push_back(entry);
    }
  }
}

std::size_t SchedulerCore::in_flight_units() const {
  std::size_t n = 0;
  for (const auto& [pid, ps] : problems_) {
    n += ps.in_flight.size();
  }
  return n;
}

std::size_t SchedulerCore::pending_units() const {
  std::size_t n = 0;
  for (const auto& [pid, ps] : problems_) {
    n += ps.issue_queue.size();
  }
  return n;
}

}  // namespace hdcs::dist
