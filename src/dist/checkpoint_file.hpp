#pragma once
// Durable checkpoint files.
//
// A server checkpoint (SchedulerCore::checkpoint() bytes) becomes crash-
// safe on disk via the classic recipe: write to a ".tmp" sibling, fsync the
// file, rename() over the destination, fsync the directory. A reader after
// kill -9 sees either the previous complete checkpoint or the new complete
// checkpoint — never a torn mix.
//
// File layout: magic "HKCP"(u32) version(u32) payload_len(u64)
//              payload[payload_len] crc32(u32)
// The CRC covers the payload; a torn or bit-rotted file surfaces as
// ProtocolError instead of feeding garbage into restore().

#include <cstddef>
#include <optional>
#include <span>
#include <string>
#include <vector>

namespace hdcs::obs {
class Tracer;
}

namespace hdcs::dist {

/// Atomically replace `path` with a checkpoint file holding `payload`.
/// Throws IoError on filesystem failure.
void write_checkpoint_file(const std::string& path,
                           std::span<const std::byte> payload);

/// Read and validate a checkpoint file. Returns nullopt if `path` does not
/// exist; throws ProtocolError on bad magic/version/CRC/truncation, IoError
/// on I/O failure.
std::optional<std::vector<std::byte>> read_checkpoint_file(
    const std::string& path);

/// Shared observability for a durable save: bump checkpoint.saves, set the
/// checkpoint.bytes gauge, and emit a checkpoint_saved trace event (if
/// `tracer` is non-null) with the caller's clock — the TCP server (wall
/// time) and the simulator (virtual time) emit the identical schema.
void record_checkpoint_saved(obs::Tracer* tracer, double t, std::size_t bytes,
                             std::size_t problems, std::size_t units_in_flight);

}  // namespace hdcs::dist
