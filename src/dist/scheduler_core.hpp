#pragma once
// Transport-independent scheduling brain.
//
// All of the distributed system's decision making lives here: which problem
// a work request is served from, how big the unit is (granularity policy),
// lease tracking and reissue of units lost to failed or slow donors, and
// per-client throughput estimation. The TCP Server drives it with wall-clock
// time; the discrete-event simulator drives the *same object* with virtual
// time — that is what lets the paper's 83- and 200-machine experiments run
// faithfully on one core.
//
// Threading: SchedulerCore is NOT thread-safe; callers serialise access
// (Server holds a mutex, the simulator is single-threaded).

#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "dist/data_manager.hpp"
#include "dist/granularity.hpp"
#include "dist/work.hpp"

namespace hdcs::obs {
class Tracer;
}

namespace hdcs::dist {

struct SchedulerConfig {
  /// Units not completed within lease_timeout seconds are reissued.
  double lease_timeout = 300.0;
  /// Clients silent for longer than this are presumed dead (0 disables).
  double client_timeout = 0.0;
  /// EWMA smoothing for measured client throughput.
  double ewma_alpha = 0.3;
  /// End-game straggler hedging: when a client asks for work and no fresh
  /// or requeued unit exists, speculatively hand it a *copy* of the oldest
  /// outstanding lease (owned by someone else). Whichever result arrives
  /// first wins; the loser is dropped as a duplicate. Bounds the tail a
  /// slow semi-idle donor can add to a problem without waiting for the
  /// lease timeout.
  bool hedge_endgame = false;
  /// Maximum times a unit may be hedged (attempt cap = 1 + this).
  int max_hedges_per_unit = 1;
  /// Poison-unit quarantine: a unit whose lease has failed (expiry, donor
  /// crash/timeout) this many times is quarantined instead of reissued
  /// forever — one unit that crashes every donor it touches must not wedge
  /// the whole problem. A late genuine result for a quarantined unit is
  /// still accepted (rescued). 0 = unlimited reissues (the default).
  int max_attempts_per_unit = 0;
  GranularityBounds bounds;
};

/// One row of the scheduler's client table, exposed for observability
/// (Server::client_stats(), the MSG_STATS snapshot, hdcs_top).
struct ClientInfo {
  ClientId id = 0;
  std::string name;
  bool active = true;
  ClientStats stats;
};

struct SchedulerStats {
  std::uint64_t units_issued = 0;
  std::uint64_t units_reissued = 0;
  std::uint64_t units_hedged = 0;
  std::uint64_t results_accepted = 0;
  std::uint64_t duplicate_results_dropped = 0;
  std::uint64_t stale_results_dropped = 0;
  std::uint64_t work_requests_unserved = 0;
  std::uint64_t clients_expired = 0;
  std::uint64_t units_quarantined = 0;
};

class SchedulerCore {
 public:
  SchedulerCore(SchedulerConfig config, std::unique_ptr<GranularityPolicy> policy);

  // ---- problems ----

  /// Register a problem; several may run concurrently (Fig. 2 runs six).
  ProblemId submit_problem(std::shared_ptr<DataManager> dm);

  [[nodiscard]] bool problem_complete(ProblemId id) const;
  [[nodiscard]] bool all_complete() const;
  [[nodiscard]] std::vector<std::byte> final_result(ProblemId id) const;
  [[nodiscard]] const DataManager& data_manager(ProblemId id) const;
  [[nodiscard]] std::vector<ProblemId> active_problems() const;

  // ---- clients ----

  ClientId client_joined(const std::string& name, double benchmark_ops_per_sec,
                         double now);
  /// Orderly or detected departure: all leased units are requeued.
  void client_left(ClientId id, double now);
  void heartbeat(ClientId id, double now);
  [[nodiscard]] const ClientStats* client_stats(ClientId id) const;
  /// Snapshot of every client (active and departed) the core has seen.
  [[nodiscard]] std::vector<ClientInfo> all_client_stats() const;
  [[nodiscard]] int active_client_count() const;

  // ---- the work loop ----

  /// Serve a work request. Tries requeued units first, then asks active
  /// problems (round-robin, starting after the problem served last) for a
  /// fresh unit sized by the granularity policy. nullopt = nothing
  /// available right now (all problems complete or stage-blocked).
  std::optional<WorkUnit> request_work(ClientId client, double now);

  /// Accept a result. Returns true if this was the first result for the
  /// unit (merged into the DataManager); false for duplicates/stale.
  bool submit_result(ClientId client, const ResultUnit& result, double now);

  /// Housekeeping: expire leases and dead clients. Call periodically.
  void tick(double now);

  // ---- checkpoint / restore ----

  /// Added to next_unit_id and next_client_id by restore(). Ids handed out
  /// after the checkpoint was taken (and so lost with the crash) can never
  /// collide with ids the restored core issues: a reconnecting donor's
  /// buffered pre-crash result is either resumed (pre-checkpoint id) or
  /// safely dropped as stale — never merged into the wrong unit.
  static constexpr std::uint64_t kRestoreIdGap = 1ull << 32;

  /// Serialize every problem's progress, including units in flight (their
  /// payloads are retained by the scheduler, so nothing computed is lost)
  /// and quarantined units. Clients are not persisted — donors simply
  /// re-register after a restart. Requires every DataManager to support
  /// snapshots.
  void checkpoint(ByteWriter& w) const;

  /// Restore a checkpoint into this core. The same problems must already
  /// have been re-submitted (same inputs, same order, hence same ids);
  /// their DataManagers are rewound and all in-flight units are queued for
  /// reissue. Id counters jump by kRestoreIdGap (see above). Returns the
  /// number of units requeued; emits a checkpoint_restored trace event and
  /// bumps checkpoint.restore_units_requeued. Throws ProtocolError on id
  /// mismatch or pre-existing progress.
  std::size_t restore(ByteReader& r);

  /// Registered problem count (for checkpoint observability).
  [[nodiscard]] std::size_t problem_count() const { return problems_.size(); }
  /// Units currently leased or awaiting reissue across all problems.
  [[nodiscard]] std::size_t in_flight_units() const;

  [[nodiscard]] const SchedulerStats& stats() const { return stats_; }
  [[nodiscard]] const SchedulerConfig& config() const { return config_; }
  [[nodiscard]] const GranularityPolicy& policy() const { return *policy_; }

  /// Attach a structured event trace (see obs/trace.hpp). Every scheduling
  /// decision — issue, reissue, hedge, completion, duplicate, join/leave,
  /// stage barrier, checkpoint — is emitted with the caller's timestamps,
  /// so the simulator (virtual time) and the Server (wall time) produce
  /// the same schema. nullptr (the default) disables tracing; the tracer
  /// must outlive this core. The caller's serialisation rules apply (the
  /// core is not thread-safe, and neither is its use of the tracer).
  void set_tracer(obs::Tracer* tracer) { tracer_ = tracer; }
  [[nodiscard]] obs::Tracer* tracer() const { return tracer_; }

 private:
  struct Lease {
    WorkUnit unit;
    ClientId owner = 0;
    double issued_at = 0;
    double deadline = 0;
    int attempt = 1;
  };

  struct ProblemState {
    std::shared_ptr<DataManager> dm;
    std::deque<Lease> requeue;              // expired/orphaned units to reissue
    std::map<UnitId, Lease> outstanding;    // unit_id -> live lease
    std::map<UnitId, Lease> quarantined;    // poison units, never reissued
    std::set<UnitId> completed;             // for duplicate detection
    UnitId next_unit_id = 1;
    bool barrier_flagged = false;  // one stage_barrier event per dry spell
  };

  struct ClientState {
    ClientId self_id = 0;
    std::string name;
    ClientStats stats;
    bool active = true;
  };

  std::optional<WorkUnit> issue_from(ProblemId pid, ProblemState& ps, ClientState& cs,
                                     double now);
  std::optional<WorkUnit> hedge_from(ProblemState& ps, ClientState& cs, double now);
  void requeue_client_units(ClientId id, double now, const char* reason);
  /// A lease failed (expiry / donor loss): requeue it, or quarantine it
  /// once it has burned max_attempts_per_unit attempts.
  void fail_lease(ProblemId pid, ProblemState& ps, Lease&& lease, double now,
                  const char* reason);

  SchedulerConfig config_;
  std::unique_ptr<GranularityPolicy> policy_;
  std::map<ProblemId, ProblemState> problems_;
  std::map<ClientId, ClientState> clients_;
  ProblemId next_problem_id_ = 1;
  ClientId next_client_id_ = 1;
  ProblemId rr_cursor_ = 0;  // last problem served (round-robin fairness)
  SchedulerStats stats_;
  obs::Tracer* tracer_ = nullptr;
  double last_now_ = 0;  // latest timestamp seen; stamps clock-less events
};

}  // namespace hdcs::dist
