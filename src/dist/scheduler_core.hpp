#pragma once
// Transport-independent scheduling brain.
//
// All of the distributed system's decision making lives here: which problem
// a work request is served from, how big the unit is (granularity policy),
// lease tracking and reissue of units lost to failed or slow donors, and
// per-client throughput estimation. The TCP Server drives it with wall-clock
// time; the discrete-event simulator drives the *same object* with virtual
// time — that is what lets the paper's 83- and 200-machine experiments run
// faithfully on one core.
//
// Result integrity: donors cannot be trusted to return *correct* bytes
// (flaky RAM, overclocked hardware, hostile volunteers). When replication
// is enabled the scheduler leases k copies of each unit to distinct donors,
// votes on the CRC-32 digests of the returned payloads, merges one
// canonical payload once a quorum of digests agree, and reissues
// tie-breaker replicas on disagreement. A per-donor reputation score (EWMA
// of vote wins/losses, keyed by donor *name* so it survives reconnects)
// lets proven donors run un-replicated, subject to seeded random
// spot-checks; donors that lose votes are demoted back to full replication
// and blacklisted after repeated offenses. See docs/ROBUSTNESS.md.
//
// Threading: SchedulerCore is NOT thread-safe; callers serialise access
// (Server holds a mutex, the simulator is single-threaded).

#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "dist/data_manager.hpp"
#include "dist/granularity.hpp"
#include "dist/work.hpp"
#include "util/rng.hpp"

namespace hdcs::obs {
class Tracer;
}

namespace hdcs::dist {

struct SchedulerConfig {
  /// Units not completed within lease_timeout seconds are reissued.
  double lease_timeout = 300.0;
  /// Clients silent for longer than this are presumed dead (0 disables).
  double client_timeout = 0.0;
  /// EWMA smoothing for measured client throughput.
  double ewma_alpha = 0.3;
  /// End-game straggler hedging: when a client asks for work and no fresh
  /// or requeued unit exists, speculatively hand it a *copy* of the oldest
  /// outstanding lease (owned by someone else). Whichever result arrives
  /// first wins; the loser is dropped as a duplicate. Bounds the tail a
  /// slow semi-idle donor can add to a problem without waiting for the
  /// lease timeout.
  bool hedge_endgame = false;
  /// Maximum times a unit may be hedged.
  int max_hedges_per_unit = 1;
  /// Poison-unit quarantine: a unit whose every lease has failed (expiry,
  /// donor crash/timeout) this many times is quarantined instead of
  /// reissued forever — one unit that crashes every donor it touches must
  /// not wedge the whole problem. A late genuine result for a quarantined
  /// unit is still accepted (rescued). 0 = unlimited reissues (the
  /// default). Lost hedge or replica copies whose siblings are still alive
  /// do NOT burn attempts — only the failure of a unit's *last* live copy
  /// counts.
  int max_attempts_per_unit = 0;
  /// Per-client in-flight budget: a client already holding this many
  /// outstanding leases is served nothing until results (or lease expiry)
  /// drain the backlog — one greedy multi-threaded donor must not strip-
  /// mine the queue and then crash with half the problem leased. 0 =
  /// unbounded (the default, and the pre-overload-control behaviour).
  int max_outstanding_per_client = 0;
  GranularityBounds bounds;

  // ---- result integrity (replication / voting / reputation) ----

  /// Lease k copies of each unit to k distinct donors and accept a payload
  /// only when `quorum` digests agree. 1 (the default) disables
  /// replication entirely — every behaviour is then identical to the
  /// pre-integrity scheduler.
  int replication_factor = 1;
  /// Digest votes required to accept a payload; 0 = simple majority of
  /// replication_factor (k/2 + 1).
  int quorum = 0;
  /// Trusted donors run un-replicated, but each fresh unit issued to one
  /// is spot-checked (replicated anyway) with this probability, drawn from
  /// a deterministic RNG seeded by integrity_seed.
  double spot_check_rate = 0.05;
  std::uint64_t integrity_seed = 1;
  /// Reputation EWMA: score <- (1-a)*score + a*(win ? 1 : 0), starting at
  /// 0.5. A donor is trusted once score >= reputation_trust_threshold.
  double reputation_alpha = 0.2;
  double reputation_trust_threshold = 0.8;
  /// Blacklist a donor name after this many total vote losses: its work
  /// requests are refused and its results rejected. 0 = never blacklist.
  int blacklist_after = 3;
  /// When every vote is in and no digest has quorum, reissue one
  /// tie-breaker replica — at most this many times before the unit is
  /// quarantined as unresolvable.
  int max_tie_breakers = 4;

  /// Client-table hygiene: a departed client row (Goodbye or timeout) is
  /// evicted this many seconds after it was last seen, once its leases
  /// have resolved, so a fleet of reconnecting donors does not grow the
  /// table forever. Aggregate counts survive eviction (clients_evicted /
  /// evicted_units_completed). 0 = keep departed rows forever.
  double client_retention_s = 600.0;
};

/// Per-donor trust state, keyed by donor *name* (client ids are ephemeral
/// across reconnects). Persisted in checkpoints.
struct DonorReputation {
  double score = 0.5;  // EWMA of vote outcomes in [0, 1]
  std::uint64_t vote_wins = 0;
  std::uint64_t vote_losses = 0;
  bool blacklisted = false;
};

/// One row of the scheduler's client table, exposed for observability
/// (Server::client_stats(), the MSG_STATS snapshot, hdcs_top).
struct ClientInfo {
  ClientId id = 0;
  std::string name;
  bool active = true;
  ClientStats stats;
  /// Reputation of the donor *name* this row belongs to.
  double reputation = 0.5;
  bool blacklisted = false;
  std::uint64_t vote_wins = 0;
  std::uint64_t vote_losses = 0;
};

struct SchedulerStats {
  std::uint64_t units_issued = 0;
  std::uint64_t units_reissued = 0;
  std::uint64_t units_hedged = 0;
  std::uint64_t results_accepted = 0;
  std::uint64_t duplicate_results_dropped = 0;
  std::uint64_t stale_results_dropped = 0;
  std::uint64_t work_requests_unserved = 0;
  std::uint64_t clients_expired = 0;
  std::uint64_t units_quarantined = 0;
  // ---- result integrity ----
  std::uint64_t units_replicated = 0;      // units put to a vote
  std::uint64_t replicas_issued = 0;       // extra copies leased out
  std::uint64_t spot_checks = 0;           // replications of trusted donors
  std::uint64_t votes_recorded = 0;
  std::uint64_t vote_quorums = 0;          // units resolved by agreement
  std::uint64_t vote_mismatches = 0;       // full rounds with no quorum
  std::uint64_t results_rejected_mismatch = 0;     // lost a digest vote
  std::uint64_t results_rejected_digest = 0;       // wire CRC != payload
  std::uint64_t results_rejected_blacklisted = 0;  // from a banned donor
  std::uint64_t donors_blacklisted = 0;
  std::uint64_t clients_evicted = 0;  // departed rows aged out of the table
  std::uint64_t results_rejected_stale_epoch = 0;  // fenced deposed-primary work
};

class SchedulerCore {
 public:
  SchedulerCore(SchedulerConfig config, std::unique_ptr<GranularityPolicy> policy);

  // ---- problems ----

  /// Register a problem; several may run concurrently (Fig. 2 runs six).
  ProblemId submit_problem(std::shared_ptr<DataManager> dm);

  [[nodiscard]] bool problem_complete(ProblemId id) const;
  [[nodiscard]] bool all_complete() const;
  [[nodiscard]] std::vector<std::byte> final_result(ProblemId id) const;
  [[nodiscard]] const DataManager& data_manager(ProblemId id) const;
  [[nodiscard]] std::vector<ProblemId> active_problems() const;

  // ---- content-addressed blob store (protocol v4 bulk-data plane) ----
  //
  // submit_problem() interns the problem data as a pinned blob;
  // request_work() interns every blob a DataManager attaches to a fresh
  // unit and strips the bytes, so UnitStates and wire assignments carry
  // only {digest, size} references. A blob's bytes live until the last
  // incomplete unit referencing it is merged (pinned problem-data blobs
  // live as long as the core).

  /// Bytes of an interned blob; nullptr when no incomplete unit references
  /// the digest (the caller should treat the referencing unit as stale).
  [[nodiscard]] std::shared_ptr<const std::vector<std::byte>> blob_bytes(
      std::uint64_t digest) const;
  /// Content digest / raw size of a problem's input data.
  [[nodiscard]] std::uint64_t problem_data_digest(ProblemId id) const;
  [[nodiscard]] std::uint64_t problem_data_bytes(ProblemId id) const;
  /// Fill an issued unit's blob references back in with their bytes. The
  /// transports stream blobs separately (cache-negotiated); in-process
  /// drivers that hand the unit straight to an Algorithm call this instead.
  /// Throws ProtocolError if a referenced digest is no longer interned.
  void materialize_unit_blobs(WorkUnit& unit) const;

  // ---- clients ----

  ClientId client_joined(const std::string& name, double benchmark_ops_per_sec,
                         double now);
  /// Orderly or detected departure: all leased units are requeued.
  void client_left(ClientId id, double now);
  void heartbeat(ClientId id, double now);
  [[nodiscard]] const ClientStats* client_stats(ClientId id) const;
  /// Snapshot of every client (active and departed) the core has seen.
  [[nodiscard]] std::vector<ClientInfo> all_client_stats() const;
  [[nodiscard]] int active_client_count() const;
  /// Reputation of a donor name; nullptr until it has won or lost a vote
  /// (or been issued replicated work).
  [[nodiscard]] const DonorReputation* reputation(const std::string& name) const;
  /// Units completed by client rows already evicted from the table.
  [[nodiscard]] std::uint64_t evicted_units_completed() const {
    return evicted_units_completed_;
  }

  // ---- the work loop ----

  /// Serve a work request. Tries requeued units and pending replica copies
  /// first, then asks active problems (round-robin, starting after the
  /// problem served last) for a fresh unit sized by the granularity
  /// policy. nullopt = nothing available right now (all problems complete
  /// or stage-blocked) or the requester is blacklisted.
  std::optional<WorkUnit> request_work(ClientId client, double now);

  /// Accept a result. Returns true if the result contributed (merged, or
  /// recorded as a digest vote); false for duplicates, stale results,
  /// digest mismatches and blacklisted donors.
  bool submit_result(ClientId client, const ResultUnit& result, double now);

  /// Housekeeping: expire leases and dead clients. Call periodically.
  void tick(double now);

  // ---- checkpoint / restore ----

  /// Added to next_unit_id and next_client_id by restore(). Ids handed out
  /// after the checkpoint was taken (and so lost with the crash) can never
  /// collide with ids the restored core issues: a reconnecting donor's
  /// buffered pre-crash result is either resumed (pre-checkpoint id) or
  /// safely dropped as stale — never merged into the wrong unit.
  static constexpr std::uint64_t kRestoreIdGap = 1ull << 32;

  /// Serialize every problem's progress, including units in flight (their
  /// payloads are retained by the scheduler, so nothing computed is lost),
  /// quarantined units, partial digest votes, and the donor reputation
  /// table. Clients are not persisted — donors simply re-register after a
  /// restart. Requires every DataManager to support snapshots.
  void checkpoint(ByteWriter& w) const;

  /// Restore a checkpoint into this core. The same problems must already
  /// have been re-submitted (same inputs, same order, hence same ids);
  /// their DataManagers are rewound and all in-flight units are queued for
  /// reissue (units mid-vote keep their recorded votes and are queued for
  /// the replicas still missing). Id counters jump by kRestoreIdGap (see
  /// above). Returns the number of units requeued; emits a
  /// checkpoint_restored trace event and bumps
  /// checkpoint.restore_units_requeued. Throws ProtocolError on id
  /// mismatch or pre-existing progress.
  std::size_t restore(ByteReader& r);

  // ---- exact snapshot / restore (WAL base image, hot-standby sync) ----
  //
  // checkpoint()/restore() above are intentionally lossy: restore requeues
  // every in-flight lease, drops the client table, and jumps the id
  // counters by kRestoreIdGap. The WAL and the replication stream instead
  // need a byte-exact state transfer: a standby replaying the primary's
  // operation log must land in the *same* state the primary was in, field
  // for field, or replay diverges. snapshot_exact() serialises every
  // member — leases, client rows, stats, the RR cursor, the integrity
  // RNG's raw state, the epoch — and restore_exact() overwrites a live
  // core with it. The same problems must already be registered (same
  // inputs, same order); their DataManagers are rewound to the snapshot.
  // Because all core containers are ordered maps, two cores are in
  // identical states iff their snapshot_exact() bytes are identical —
  // the equivalence tests rely on this.

  /// Current server term. Starts at 1; bumped via bump_epoch() on WAL
  /// recovery and standby promotion. Stamped into every issued lease.
  [[nodiscard]] std::uint64_t epoch() const { return epoch_; }
  /// Enter a new term (monotonic; throws ProtocolError on regression).
  /// Leases issued from now on carry the new epoch; results stamped with
  /// an older non-zero epoch are rejected by submit_result.
  void bump_epoch(std::uint64_t new_epoch);

  void snapshot_exact(ByteWriter& w) const;
  void restore_exact(ByteReader& r);

  /// Registered problem count (for checkpoint observability).
  [[nodiscard]] std::size_t problem_count() const { return problems_.size(); }
  /// Units currently leased or awaiting reissue across all problems.
  [[nodiscard]] std::size_t in_flight_units() const;
  /// Queued unit copies waiting for a donor to ask (reissues + replica
  /// copies). A persistently non-zero value means the fleet is too small
  /// for the failure/replication rate.
  [[nodiscard]] std::size_t pending_units() const;

  [[nodiscard]] const SchedulerStats& stats() const { return stats_; }
  [[nodiscard]] const SchedulerConfig& config() const { return config_; }
  [[nodiscard]] const GranularityPolicy& policy() const { return *policy_; }

  /// Attach a structured event trace (see obs/trace.hpp). Every scheduling
  /// decision — issue, reissue, hedge, replica, vote, completion,
  /// duplicate, rejection, blacklist, join/leave, stage barrier,
  /// checkpoint — is emitted with the caller's timestamps, so the
  /// simulator (virtual time) and the Server (wall time) produce the same
  /// schema. nullptr (the default) disables tracing; the tracer must
  /// outlive this core. The caller's serialisation rules apply (the core
  /// is not thread-safe, and neither is its use of the tracer).
  void set_tracer(obs::Tracer* tracer) { tracer_ = tracer; }
  [[nodiscard]] obs::Tracer* tracer() const { return tracer_; }

 private:
  /// One live lease: a copy of the unit in some donor's hands.
  struct Replica {
    ClientId owner = 0;
    double issued_at = 0;
    double deadline = 0;
    bool hedge = false;  // a lost hedge is dropped, never requeued
  };

  /// Everything the scheduler knows about one incomplete unit: the unit
  /// itself (payload retained for reissue), every live lease, queued
  /// copies awaiting a donor, and the digest votes received so far.
  struct UnitState {
    WorkUnit unit;
    /// Failed delivery attempts; incremented when a *reissued* copy is
    /// served. Drives poison-unit quarantine.
    int attempt = 1;
    int hedges = 0;           // speculative copies issued so far
    int replicas_wanted = 1;  // k for this unit (1 = un-replicated)
    int quorum_needed = 1;
    int tie_breakers = 0;
    bool spot_check = false;  // replicated only to audit a trusted donor
    std::vector<Replica> leases;
    int queued = 0;  // copies sitting in the issue queue
    std::map<std::string, std::uint32_t> votes;  // donor name -> digest
    /// First payload seen per digest; the quorum winner becomes canonical.
    std::map<std::uint32_t, std::vector<std::byte>> payload_by_digest;

    [[nodiscard]] int live_copies() const {
      return static_cast<int>(leases.size()) + static_cast<int>(votes.size()) +
             queued;
    }
    [[nodiscard]] bool holds_lease(ClientId id) const {
      for (const auto& l : leases) {
        if (l.owner == id) return true;
      }
      return false;
    }
  };

  struct QueueEntry {
    UnitId uid = 0;
    bool reissue = false;  // true: a failed unit (counts an attempt when served)
  };

  struct ProblemState {
    std::shared_ptr<DataManager> dm;
    std::map<UnitId, UnitState> in_flight;  // every incomplete issued unit
    std::deque<QueueEntry> issue_queue;     // copies awaiting a donor
    std::map<UnitId, UnitState> quarantined;  // poison units, never reissued
    std::set<UnitId> completed;               // for duplicate detection
    UnitId next_unit_id = 1;
    bool barrier_flagged = false;  // one stage_barrier event per dry spell
    std::uint64_t data_digest = 0;  // content digest of dm->problem_data()
    std::uint64_t data_bytes = 0;
  };

  struct BlobEntry {
    std::shared_ptr<const std::vector<std::byte>> bytes;
    int refs = 0;        // incomplete units referencing this digest
    bool pinned = false; // problem data: never released
  };

  struct ClientState {
    ClientId self_id = 0;
    std::string name;
    ClientStats stats;
    bool active = true;
  };

  std::optional<WorkUnit> issue_from(ProblemId pid, ProblemState& ps, ClientState& cs,
                                     double now);
  std::optional<WorkUnit> serve_queued(ProblemId pid, ProblemState& ps,
                                       ClientState& cs, double now);
  std::optional<WorkUnit> hedge_from(ProblemId pid, ProblemState& ps,
                                     ClientState& cs, double now);
  void requeue_client_units(ClientId id, double now, const char* reason);
  /// One of a unit's leases failed (expiry / donor loss); the lease has
  /// already been removed. Drops lost hedges, requeues a replacement copy
  /// when the unit is short of its replication target. Returns true when
  /// the failure of the unit's last copy burned the attempt cap — the
  /// caller must then move_to_quarantine (deferred because the caller may
  /// be iterating the in_flight map).
  bool fail_replica(ProblemId pid, ProblemState& ps, UnitState& us,
                    const Replica& lost, double now, const char* reason);
  /// Decide whether the unit just leased to `cs` must be replicated
  /// (untrusted recipient, or a spot-check of a trusted one) and queue the
  /// missing copies.
  void apply_replication_policy(ProblemId pid, ProblemState& ps, UnitState& us,
                                const ClientState& cs, double now);
  void queue_copies(ProblemState& ps, UnitState& us, int copies, bool reissue);
  /// Record `client`'s digest vote and resolve: merge on quorum, reissue a
  /// tie-breaker when every copy has voted without agreement.
  bool record_vote(ProblemId pid, ProblemState& ps, UnitId uid, ClientId client,
                   const std::string& voter, std::uint32_t digest,
                   const ResultUnit& result, double now);
  /// Merge `payload` as the unit's canonical result and settle the vote:
  /// reward winners, punish losers, cancel surviving leases.
  void accept_unit(ProblemId pid, ProblemState& ps, UnitId uid, ClientId client,
                   std::uint32_t winning_digest, std::vector<std::byte> payload,
                   double now);
  void move_to_quarantine(ProblemId pid, ProblemState& ps, UnitId uid,
                          double now, const char* reason);
  /// Update a donor's reputation after a vote; may blacklist it.
  void settle_vote(const std::string& name, bool won, double now);
  [[nodiscard]] bool is_trusted(const std::string& name) const;
  [[nodiscard]] bool is_blacklisted(const std::string& name) const;
  [[nodiscard]] int effective_quorum() const;
  void release_lease_stat(ClientId owner);
  /// Voter key for a client id: its name, or "#<id>" if unknown.
  [[nodiscard]] std::string voter_name(ClientId id) const;
  /// Move a unit's blob bytes into the store (bumping refcounts) and strip
  /// them from the unit, leaving {digest, size} references. Blobs already
  /// byte-less (restore path) only bump refs; an unknown digest there is a
  /// ProtocolError.
  void intern_unit_blobs(WorkUnit& unit);
  /// Drop one reference per blob of a completing unit; unpinned entries
  /// reaching zero refs are erased.
  void release_unit_blobs(const WorkUnit& unit);

  SchedulerConfig config_;
  std::unique_ptr<GranularityPolicy> policy_;
  std::map<ProblemId, ProblemState> problems_;
  std::map<std::uint64_t, BlobEntry> blob_store_;
  std::map<ClientId, ClientState> clients_;
  std::map<std::string, DonorReputation> reputation_;
  ProblemId next_problem_id_ = 1;
  ClientId next_client_id_ = 1;
  ProblemId rr_cursor_ = 0;  // last problem served (round-robin fairness)
  SchedulerStats stats_;
  std::uint64_t evicted_units_completed_ = 0;
  Rng integrity_rng_;  // spot-check draws; seeded by integrity_seed
  obs::Tracer* tracer_ = nullptr;
  double last_now_ = 0;  // latest timestamp seen; stamps clock-less events
  std::uint64_t epoch_ = 1;  // server term; see epoch()/bump_epoch()
};

}  // namespace hdcs::dist
