#pragma once
// Write-ahead log for SchedulerCore mutations.
//
// PR 3's checkpoints bound a crash's damage to checkpoint_interval_s of
// accepted results; the WAL closes that window to zero. The scheduler is a
// deterministic state machine (seeded integrity RNG, stateless granularity
// policies, deterministic DataManagers), so logging its mutating calls —
// client join/leave, heartbeat, work request, result submission, tick,
// epoch bump — and replaying them over an exact base snapshot reproduces
// the pre-crash state field for field. The server appends each record
// under the same lock that serialises the core call, fsyncs before
// acknowledging a result (fsync persists every earlier buffered record
// too, so durability is always a prefix of the log), and periodically
// folds old segments into a fresh exact snapshot (compaction: checkpoint =
// snapshot + WAL tail replay).
//
// On-disk layout under one directory:
//   base.ckpt            HKCP envelope; payload = u64 start_lsn,
//                        bytes(SchedulerCore::snapshot_exact)
//   wal-<lsn16hex>.seg   record frames: u32 len | u32 crc32(payload) |
//                        payload(u64 lsn, u8 op, f64 now, body)
// Records are strictly lsn-contiguous across segment rotation. open()
// truncates a torn tail (partial frame, CRC mismatch, lsn gap) back to the
// last valid record — a kill -9 mid-write must surface as a shorter log,
// never a crash or garbage replay.
//
// The same log doubles as the protocol v6 replication stream's storage on
// a hot standby: the primary ships its snapshot (the standby compact()s it
// in) followed by live records (the standby append()s them with the
// primary's lsn), so after promotion the standby's directory is a valid
// WAL for the next failover.

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "dist/work.hpp"
#include "util/vfs.hpp"

namespace hdcs::obs {
class Tracer;
}

namespace hdcs::dist {

class SchedulerCore;

enum class WalOp : std::uint8_t {
  kClientJoined = 1,
  kClientLeft = 2,
  kHeartbeat = 3,
  kRequestWork = 4,
  kSubmitResult = 5,
  kTick = 6,
  kEpoch = 7,  // bump_epoch(new_epoch) on recovery / promotion
};

/// One logged SchedulerCore mutation. Which fields are meaningful depends
/// on `op`; unused ones stay default. The donor-measured span profile of a
/// submitted result is deliberately NOT logged — it feeds histograms and
/// the trace, never core state, and omitting it keeps replayed-core ==
/// live-core snapshot equality exact.
struct WalRecord {
  std::uint64_t lsn = 0;  // 0 in append() = "assign the next lsn"
  WalOp op = WalOp::kTick;
  double now = 0;          // the timestamp the server passed to the core
  std::uint64_t arg = 0;   // client id (left/heartbeat/request/submit),
                           // or the new epoch (kEpoch)
  std::string name;        // kClientJoined: donor name
  double benchmark = 0;    // kClientJoined: self-reported ops/sec
  ResultUnit result;       // kSubmitResult (profile omitted)
};

/// Record payload codec (lsn + op + body, no disk framing). The disk
/// frames add length + CRC; the v6 replication stream ships these payloads
/// inside its own CRC'd message frames.
std::vector<std::byte> encode_wal_record(const WalRecord& rec);
WalRecord decode_wal_record(std::span<const std::byte> payload);

/// Re-apply one logged mutation to a core. InputError from request_work
/// (unknown/inactive client can only arise from a log written by a buggy
/// primary) is swallowed exactly like the serving loop turns it into an
/// error frame; everything else propagates.
void apply_wal_record(SchedulerCore& core, const WalRecord& rec);

struct WalConfig {
  std::string dir;
  /// Rotate to a new segment once the current one reaches this size. The
  /// previous segment is fsynced at rotation so the durable prefix can
  /// only ever miss tail records of the *current* segment.
  std::size_t segment_bytes = 4u << 20;
};

/// What open() recovered from the directory: the newest base snapshot (if
/// any) and every valid record past it, in lsn order. The caller restores
/// the snapshot with restore_exact(), replays `tail` with
/// apply_wal_record(), then bumps the epoch (the truncated tail may have
/// contained unsynced RequestWork records whose unit ids the revived core
/// will reuse — stale results for them are fenced by term, exactly like
/// kRestoreIdGap fences post-checkpoint ids).
struct WalRecovery {
  std::optional<std::vector<std::byte>> base_snapshot;
  std::vector<WalRecord> tail;
  std::uint64_t next_lsn = 1;
  std::size_t segments_scanned = 0;
  std::size_t records_replayable = 0;
  std::size_t torn_bytes_truncated = 0;
};

class WalLog {
 public:
  /// Opens (creating the directory if needed) and recovers: validates the
  /// base snapshot, walks the segments, truncates any torn tail in place,
  /// and positions the log to append at next_lsn. Throws IoError on
  /// filesystem failure, ProtocolError on a corrupt base snapshot.
  explicit WalLog(WalConfig config);
  ~WalLog();

  WalLog(const WalLog&) = delete;
  WalLog& operator=(const WalLog&) = delete;

  /// The recovery result captured by the constructor (tail records are
  /// moved out by the first call).
  WalRecovery take_recovery();

  /// Append one record (buffered write; durable only after sync() or a
  /// clean close). rec.lsn == 0 assigns the next lsn; a non-zero lsn (the
  /// standby tailing the primary) must equal next_lsn(). Returns the lsn
  /// written. Rotates segments as configured. On a write or rotation
  /// failure the log enters the failed state (see failed()) and throws.
  std::uint64_t append(const WalRecord& rec);

  /// fsync the current segment: every record appended so far is durable.
  /// On failure the log enters the failed state and throws — the segment
  /// is closed without a retry (fsyncgate: after a failed fsync the kernel
  /// may have dropped the dirty pages, so re-fsyncing would falsely report
  /// success); the only way back is compact(), which rebuilds from a fresh
  /// snapshot.
  void sync();

  /// Fold everything logged so far into a new base snapshot: write
  /// base.ckpt (atomic tmp+rename), delete the old segments, start a
  /// fresh one at the current lsn. Emits a wal_compacted trace event via
  /// the attached tracer with the caller's clock. This is also the
  /// recovery path out of the failed state: a successful compact() wrote
  /// the full current state durably, so whatever the broken segments lost
  /// no longer matters and the log is clean again.
  void compact(std::span<const std::byte> snapshot, double now);

  /// Adopt a replication sync: discard everything logged locally and
  /// restart the log at the primary's `start_lsn` with `snapshot` as the
  /// base. A standby calls this when it receives the ReplicaSnapshot, so
  /// its directory is a valid WAL from the stream's first record on.
  void reset(std::span<const std::byte> snapshot, std::uint64_t start_lsn,
             double now);

  [[nodiscard]] std::uint64_t next_lsn() const { return next_lsn_; }
  [[nodiscard]] const std::string& dir() const { return config_.dir; }
  [[nodiscard]] std::size_t segment_count() const { return segments_.size(); }
  /// True after a write/fsync/rotation failure: append() and sync() refuse
  /// until compact() rebuilds the log from a fresh snapshot.
  [[nodiscard]] bool failed() const { return failed_; }

  void set_tracer(obs::Tracer* tracer) { tracer_ = tracer; }

 private:
  void open_segment(std::uint64_t first_lsn);
  /// Seal the current segment. Returns false when the fsync failed (the
  /// descriptor is closed either way — never re-fsync after a failure).
  bool close_segment(bool fsync_it);
  /// Enter the failed state: close the segment WITHOUT an fsync and refuse
  /// further appends until compact() rebuilds.
  void mark_failed();
  void recover();

  WalConfig config_;
  WalRecovery recovery_;
  bool recovery_taken_ = false;
  std::vector<std::string> segments_;  // live segment paths, oldest first
  vfs::File file_;                     // current (last) segment
  std::size_t current_bytes_ = 0;      // size of the current segment
  std::uint64_t next_lsn_ = 1;
  bool failed_ = false;
  obs::Tracer* tracer_ = nullptr;
};

}  // namespace hdcs::dist
