#include "dist/registry.hpp"

#include "util/error.hpp"

namespace hdcs::dist {

AlgorithmRegistry& AlgorithmRegistry::global() {
  static AlgorithmRegistry registry;
  return registry;
}

void AlgorithmRegistry::register_algorithm(const std::string& name,
                                           AlgorithmFactory factory) {
  std::lock_guard lock(mutex_);
  auto [it, inserted] = factories_.emplace(name, std::move(factory));
  if (!inserted) {
    throw InputError("algorithm already registered: " + name);
  }
}

void AlgorithmRegistry::replace(const std::string& name, AlgorithmFactory factory) {
  std::lock_guard lock(mutex_);
  factories_[name] = std::move(factory);
}

bool AlgorithmRegistry::contains(const std::string& name) const {
  std::lock_guard lock(mutex_);
  return factories_.count(name) != 0;
}

std::unique_ptr<Algorithm> AlgorithmRegistry::create(const std::string& name) const {
  std::lock_guard lock(mutex_);
  auto it = factories_.find(name);
  if (it == factories_.end()) {
    throw InputError("unknown algorithm: " + name);
  }
  return it->second();
}

std::vector<std::string> AlgorithmRegistry::names() const {
  std::lock_guard lock(mutex_);
  std::vector<std::string> out;
  out.reserve(factories_.size());
  for (const auto& [name, _] : factories_) out.push_back(name);
  return out;
}

}  // namespace hdcs::dist
