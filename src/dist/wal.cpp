#include "dist/wal.hpp"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "dist/checkpoint_file.hpp"
#include "dist/scheduler_core.hpp"
#include "net/bulk.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/byte_buffer.hpp"
#include "util/error.hpp"
#include "util/logging.hpp"

namespace hdcs::dist {

namespace {

// Sanity cap on one record frame: a result payload is bounded by the wire
// layer's 64 MiB frame cap, so anything bigger is corruption, not data.
constexpr std::uint32_t kMaxWalRecordBytes = 80u << 20;

[[noreturn]] void throw_errno(const std::string& what) {
  throw IoError(what + ": " + std::strerror(errno));
}

void write_fully(int fd, std::span<const std::byte> data,
                 const std::string& path) {
  std::size_t off = 0;
  while (off < data.size()) {
    ssize_t n = ::write(fd, data.data() + off, data.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_errno("write " + path);
    }
    off += static_cast<std::size_t>(n);
  }
}

std::vector<std::byte> read_file(const std::string& path) {
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) throw_errno("open " + path);
  std::vector<std::byte> out;
  std::byte buf[1 << 16];
  for (;;) {
    ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) continue;
      int saved = errno;
      ::close(fd);
      errno = saved;
      throw_errno("read " + path);
    }
    if (n == 0) break;
    out.insert(out.end(), buf, buf + n);
  }
  ::close(fd);
  return out;
}

void make_dirs(const std::string& dir) {
  std::string partial;
  for (std::size_t i = 0; i <= dir.size(); ++i) {
    if (i == dir.size() || dir[i] == '/') {
      if (!partial.empty() && partial != "/" && partial != ".") {
        if (::mkdir(partial.c_str(), 0755) != 0 && errno != EEXIST) {
          throw_errno("mkdir " + partial);
        }
      }
    }
    if (i < dir.size()) partial.push_back(dir[i]);
  }
}

std::string segment_path(const std::string& dir, std::uint64_t first_lsn) {
  char name[64];
  std::snprintf(name, sizeof(name), "wal-%016llx.seg",
                static_cast<unsigned long long>(first_lsn));
  return dir + "/" + name;
}

std::string base_path(const std::string& dir) { return dir + "/base.ckpt"; }

}  // namespace

std::vector<std::byte> encode_wal_record(const WalRecord& rec) {
  ByteWriter w;
  w.u64(rec.lsn);
  w.u8(static_cast<std::uint8_t>(rec.op));
  w.f64(rec.now);
  switch (rec.op) {
    case WalOp::kClientJoined:
      w.str(rec.name);
      w.f64(rec.benchmark);
      break;
    case WalOp::kClientLeft:
    case WalOp::kHeartbeat:
    case WalOp::kRequestWork:
    case WalOp::kEpoch:
      w.u64(rec.arg);
      break;
    case WalOp::kSubmitResult:
      w.u64(rec.arg);
      w.u64(rec.result.problem_id);
      w.u64(rec.result.unit_id);
      w.u32(rec.result.stage);
      w.bytes(rec.result.payload);
      w.u32(rec.result.payload_crc);
      w.u64(rec.result.epoch);
      break;
    case WalOp::kTick:
      break;
  }
  return w.take();
}

WalRecord decode_wal_record(std::span<const std::byte> payload) {
  ByteReader r{payload};
  WalRecord rec;
  rec.lsn = r.u64();
  auto op = r.u8();
  if (op < 1 || op > static_cast<std::uint8_t>(WalOp::kEpoch)) {
    throw ProtocolError("wal record: unknown op " + std::to_string(op));
  }
  rec.op = static_cast<WalOp>(op);
  rec.now = r.f64();
  switch (rec.op) {
    case WalOp::kClientJoined:
      rec.name = r.str();
      rec.benchmark = r.f64();
      break;
    case WalOp::kClientLeft:
    case WalOp::kHeartbeat:
    case WalOp::kRequestWork:
    case WalOp::kEpoch:
      rec.arg = r.u64();
      break;
    case WalOp::kSubmitResult:
      rec.arg = r.u64();
      rec.result.problem_id = r.u64();
      rec.result.unit_id = r.u64();
      rec.result.stage = r.u32();
      rec.result.payload = r.bytes();
      rec.result.payload_crc = r.u32();
      rec.result.epoch = r.u64();
      break;
    case WalOp::kTick:
      break;
  }
  r.expect_end();
  return rec;
}

void apply_wal_record(SchedulerCore& core, const WalRecord& rec) {
  switch (rec.op) {
    case WalOp::kClientJoined:
      (void)core.client_joined(rec.name, rec.benchmark, rec.now);
      break;
    case WalOp::kClientLeft:
      core.client_left(rec.arg, rec.now);
      break;
    case WalOp::kHeartbeat:
      core.heartbeat(rec.arg, rec.now);
      break;
    case WalOp::kRequestWork:
      try {
        (void)core.request_work(rec.arg, rec.now);
      } catch (const InputError&) {
        // The serving loop answered this with an error frame; the core was
        // untouched. Replay reproduces the no-op.
      }
      break;
    case WalOp::kSubmitResult:
      (void)core.submit_result(rec.arg, rec.result, rec.now);
      break;
    case WalOp::kTick:
      core.tick(rec.now);
      break;
    case WalOp::kEpoch:
      core.bump_epoch(rec.arg);
      break;
  }
}

WalLog::WalLog(WalConfig config) : config_(std::move(config)) {
  if (config_.dir.empty()) throw InputError("WalLog: empty directory");
  if (config_.segment_bytes < 1024) {
    throw InputError("WalLog: segment_bytes must be >= 1024");
  }
  make_dirs(config_.dir);
  recover();
}

WalLog::~WalLog() { close_segment(/*fsync_it=*/true); }

WalRecovery WalLog::take_recovery() {
  if (recovery_taken_) throw Error("WalLog: recovery already taken");
  recovery_taken_ = true;
  return std::move(recovery_);
}

void WalLog::recover() {
  auto& reg = obs::Registry::global();

  // Base snapshot (if a compaction ever ran): payload = start_lsn + bytes.
  std::uint64_t expected = 1;
  if (auto payload = read_checkpoint_file(base_path(config_.dir))) {
    ByteReader r{std::span<const std::byte>(*payload)};
    expected = r.u64();
    auto view = r.raw(r.remaining());
    recovery_.base_snapshot.emplace(view.begin(), view.end());
  }

  // Every wal-*.seg, ordered by the first lsn baked into the name.
  std::vector<std::pair<std::uint64_t, std::string>> found;
  DIR* d = ::opendir(config_.dir.c_str());
  if (!d) throw_errno("opendir " + config_.dir);
  while (dirent* ent = ::readdir(d)) {
    std::string name = ent->d_name;
    if (name.rfind("wal-", 0) != 0 || name.size() != 24 ||
        name.substr(20) != ".seg") {
      continue;
    }
    char* end = nullptr;
    std::uint64_t first = std::strtoull(name.c_str() + 4, &end, 16);
    if (!end || *end != '.') continue;
    found.emplace_back(first, config_.dir + "/" + name);
  }
  ::closedir(d);
  std::sort(found.begin(), found.end());

  bool torn = false;
  for (const auto& [first_lsn, path] : found) {
    if (torn) {
      // Past a gap nothing can be contiguous: drop the orphaned segment.
      ::unlink(path.c_str());
      continue;
    }
    auto raw = read_file(path);
    recovery_.segments_scanned += 1;
    std::size_t off = 0;
    std::size_t valid_end = 0;
    while (raw.size() - off >= 8) {
      ByteReader header{std::span<const std::byte>(raw).subspan(off, 8)};
      std::uint32_t len = header.u32();
      std::uint32_t crc = header.u32();
      if (len == 0 || len > kMaxWalRecordBytes) break;
      if (raw.size() - off - 8 < len) break;  // partial final write
      auto payload = std::span<const std::byte>(raw).subspan(off + 8, len);
      if (net::crc32(payload) != crc) break;
      WalRecord rec;
      try {
        rec = decode_wal_record(payload);
      } catch (const ProtocolError&) {
        break;
      }
      if (rec.lsn >= expected) {
        if (rec.lsn != expected) break;  // lsn gap: lost tail upstream
        recovery_.tail.push_back(std::move(rec));
        recovery_.records_replayable += 1;
        expected += 1;
      }
      // else: pre-base record left behind by an interrupted compaction —
      // a valid frame, already folded into the snapshot; skip silently.
      off += 8 + len;
      valid_end = off;
    }
    if (valid_end < raw.size()) {
      // Torn or corrupt tail: keep the valid prefix, drop the rest (and
      // every later segment) so the log ends at the last good record.
      recovery_.torn_bytes_truncated += raw.size() - valid_end;
      if (::truncate(path.c_str(), static_cast<off_t>(valid_end)) != 0) {
        throw_errno("truncate " + path);
      }
      torn = true;
      LOG_WARN("wal: truncated torn tail of " << path << " ("
                                              << raw.size() - valid_end
                                              << " bytes)");
      reg.counter("wal.torn_truncations").inc();
    }
    segments_.push_back(path);
    current_bytes_ = valid_end;
  }
  next_lsn_ = expected;
  recovery_.next_lsn = expected;

  if (segments_.empty()) {
    open_segment(next_lsn_);
  } else {
    // Append to the surviving last segment.
    const std::string& path = segments_.back();
    fd_ = ::open(path.c_str(), O_WRONLY | O_APPEND);
    if (fd_ < 0) throw_errno("open " + path);
  }
  reg.gauge("wal.segments").set(static_cast<double>(segments_.size()));
}

void WalLog::open_segment(std::uint64_t first_lsn) {
  std::string path = segment_path(config_.dir, first_lsn);
  fd_ = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd_ < 0) throw_errno("open " + path);
  segments_.push_back(path);
  current_bytes_ = 0;
  auto& reg = obs::Registry::global();
  reg.counter("wal.segments_opened").inc();
  reg.gauge("wal.segments").set(static_cast<double>(segments_.size()));
}

void WalLog::close_segment(bool fsync_it) {
  if (fd_ < 0) return;
  if (fsync_it) ::fsync(fd_);
  ::close(fd_);
  fd_ = -1;
}

std::uint64_t WalLog::append(const WalRecord& rec) {
  WalRecord stamped = rec;
  if (stamped.lsn == 0) {
    stamped.lsn = next_lsn_;
  } else if (stamped.lsn != next_lsn_) {
    throw ProtocolError("wal append: lsn " + std::to_string(stamped.lsn) +
                        " != expected " + std::to_string(next_lsn_));
  }
  auto payload = encode_wal_record(stamped);
  ByteWriter frame(payload.size() + 8);
  frame.u32(static_cast<std::uint32_t>(payload.size()));
  frame.u32(net::crc32(std::span<const std::byte>(payload)));
  frame.raw(payload);
  write_fully(fd_, frame.data(), segments_.back());
  current_bytes_ += frame.data().size();
  next_lsn_ = stamped.lsn + 1;

  auto& reg = obs::Registry::global();
  reg.counter("wal.records").inc();
  reg.counter("wal.bytes").inc(frame.data().size());

  if (current_bytes_ >= config_.segment_bytes) {
    // Seal the full segment durably before its successor takes appends:
    // the durable prefix may then only ever miss current-segment tails.
    close_segment(/*fsync_it=*/true);
    open_segment(next_lsn_);
  }
  return stamped.lsn;
}

void WalLog::sync() {
  if (fd_ >= 0 && ::fsync(fd_) != 0) throw_errno("fsync " + segments_.back());
  obs::Registry::global().counter("wal.syncs").inc();
}

void WalLog::compact(std::span<const std::byte> snapshot, double now) {
  ByteWriter payload(snapshot.size() + 8);
  payload.u64(next_lsn_);
  payload.raw(snapshot);
  write_checkpoint_file(base_path(config_.dir), payload.data());
  // The snapshot is durable; every record it folded in can go. A crash
  // between these unlinks leaves stale pre-base segments behind, which
  // recovery skips record-by-record.
  close_segment(/*fsync_it=*/false);
  for (const std::string& path : segments_) ::unlink(path.c_str());
  segments_.clear();
  open_segment(next_lsn_);
  auto& reg = obs::Registry::global();
  reg.counter("wal.compactions").inc();
  reg.gauge("wal.base_bytes").set(static_cast<double>(snapshot.size()));
  if (tracer_) {
    tracer_->event(now, "wal_compacted")
        .u64("lsn", next_lsn_)
        .u64("base_bytes", snapshot.size());
  }
}

void WalLog::reset(std::span<const std::byte> snapshot, std::uint64_t start_lsn,
                   double now) {
  next_lsn_ = start_lsn;
  compact(snapshot, now);
}

}  // namespace hdcs::dist
