#include "dist/wal.hpp"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "dist/checkpoint_file.hpp"
#include "dist/scheduler_core.hpp"
#include "net/bulk.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/byte_buffer.hpp"
#include "util/error.hpp"
#include "util/logging.hpp"
#include "util/vfs.hpp"

namespace hdcs::dist {

namespace {

// Sanity cap on one record frame: a result payload is bounded by the wire
// layer's 64 MiB frame cap, so anything bigger is corruption, not data.
constexpr std::uint32_t kMaxWalRecordBytes = 80u << 20;

[[noreturn]] void throw_errno(const std::string& what) {
  throw IoError(what + ": " + std::strerror(errno));
}

std::string segment_path(const std::string& dir, std::uint64_t first_lsn) {
  char name[64];
  std::snprintf(name, sizeof(name), "wal-%016llx.seg",
                static_cast<unsigned long long>(first_lsn));
  return dir + "/" + name;
}

std::string base_path(const std::string& dir) { return dir + "/base.ckpt"; }

}  // namespace

std::vector<std::byte> encode_wal_record(const WalRecord& rec) {
  ByteWriter w;
  w.u64(rec.lsn);
  w.u8(static_cast<std::uint8_t>(rec.op));
  w.f64(rec.now);
  switch (rec.op) {
    case WalOp::kClientJoined:
      w.str(rec.name);
      w.f64(rec.benchmark);
      break;
    case WalOp::kClientLeft:
    case WalOp::kHeartbeat:
    case WalOp::kRequestWork:
    case WalOp::kEpoch:
      w.u64(rec.arg);
      break;
    case WalOp::kSubmitResult:
      w.u64(rec.arg);
      w.u64(rec.result.problem_id);
      w.u64(rec.result.unit_id);
      w.u32(rec.result.stage);
      w.bytes(rec.result.payload);
      w.u32(rec.result.payload_crc);
      w.u64(rec.result.epoch);
      break;
    case WalOp::kTick:
      break;
  }
  return w.take();
}

WalRecord decode_wal_record(std::span<const std::byte> payload) {
  ByteReader r{payload};
  WalRecord rec;
  rec.lsn = r.u64();
  auto op = r.u8();
  if (op < 1 || op > static_cast<std::uint8_t>(WalOp::kEpoch)) {
    throw ProtocolError("wal record: unknown op " + std::to_string(op));
  }
  rec.op = static_cast<WalOp>(op);
  rec.now = r.f64();
  switch (rec.op) {
    case WalOp::kClientJoined:
      rec.name = r.str();
      rec.benchmark = r.f64();
      break;
    case WalOp::kClientLeft:
    case WalOp::kHeartbeat:
    case WalOp::kRequestWork:
    case WalOp::kEpoch:
      rec.arg = r.u64();
      break;
    case WalOp::kSubmitResult:
      rec.arg = r.u64();
      rec.result.problem_id = r.u64();
      rec.result.unit_id = r.u64();
      rec.result.stage = r.u32();
      rec.result.payload = r.bytes();
      rec.result.payload_crc = r.u32();
      rec.result.epoch = r.u64();
      break;
    case WalOp::kTick:
      break;
  }
  r.expect_end();
  return rec;
}

void apply_wal_record(SchedulerCore& core, const WalRecord& rec) {
  switch (rec.op) {
    case WalOp::kClientJoined:
      (void)core.client_joined(rec.name, rec.benchmark, rec.now);
      break;
    case WalOp::kClientLeft:
      core.client_left(rec.arg, rec.now);
      break;
    case WalOp::kHeartbeat:
      core.heartbeat(rec.arg, rec.now);
      break;
    case WalOp::kRequestWork:
      try {
        (void)core.request_work(rec.arg, rec.now);
      } catch (const InputError&) {
        // The serving loop answered this with an error frame; the core was
        // untouched. Replay reproduces the no-op.
      }
      break;
    case WalOp::kSubmitResult:
      (void)core.submit_result(rec.arg, rec.result, rec.now);
      break;
    case WalOp::kTick:
      core.tick(rec.now);
      break;
    case WalOp::kEpoch:
      core.bump_epoch(rec.arg);
      break;
  }
}

WalLog::WalLog(WalConfig config) : config_(std::move(config)) {
  if (config_.dir.empty()) throw InputError("WalLog: empty directory");
  if (config_.segment_bytes < 1024) {
    throw InputError("WalLog: segment_bytes must be >= 1024");
  }
  vfs::make_dirs(config_.dir);
  recover();
}

WalLog::~WalLog() {
  // A failed log's segment was already closed without an fsync; sealing it
  // here would falsely suggest its tail is durable.
  if (!failed_ && !close_segment(/*fsync_it=*/true)) {
    LOG_WARN("wal: final fsync of " << (segments_.empty() ? config_.dir
                                                          : segments_.back())
                                    << " failed; tail may not be durable");
  }
}

WalRecovery WalLog::take_recovery() {
  if (recovery_taken_) throw Error("WalLog: recovery already taken");
  recovery_taken_ = true;
  return std::move(recovery_);
}

void WalLog::recover() {
  auto& reg = obs::Registry::global();

  // Base snapshot (if a compaction ever ran): payload = start_lsn + bytes.
  std::uint64_t expected = 1;
  if (auto payload = read_checkpoint_file(base_path(config_.dir))) {
    ByteReader r{std::span<const std::byte>(*payload)};
    expected = r.u64();
    auto view = r.raw(r.remaining());
    recovery_.base_snapshot.emplace(view.begin(), view.end());
  }

  // Every wal-*.seg, ordered by the first lsn baked into the name.
  std::vector<std::pair<std::uint64_t, std::string>> found;
  DIR* d = ::opendir(config_.dir.c_str());
  if (!d) throw_errno("opendir " + config_.dir);
  while (dirent* ent = ::readdir(d)) {
    std::string name = ent->d_name;
    if (name.rfind("wal-", 0) != 0 || name.size() != 24 ||
        name.substr(20) != ".seg") {
      continue;
    }
    char* end = nullptr;
    std::uint64_t first = std::strtoull(name.c_str() + 4, &end, 16);
    if (!end || *end != '.') continue;
    found.emplace_back(first, config_.dir + "/" + name);
  }
  ::closedir(d);
  std::sort(found.begin(), found.end());

  bool torn = false;
  for (const auto& [first_lsn, path] : found) {
    if (torn) {
      // Past a gap nothing can be contiguous: drop the orphaned segment.
      vfs::remove_file(path);
      continue;
    }
    auto raw = vfs::read_file(path);
    recovery_.segments_scanned += 1;
    std::size_t off = 0;
    std::size_t valid_end = 0;
    while (raw.size() - off >= 8) {
      ByteReader header{std::span<const std::byte>(raw).subspan(off, 8)};
      std::uint32_t len = header.u32();
      std::uint32_t crc = header.u32();
      if (len == 0 || len > kMaxWalRecordBytes) break;
      if (raw.size() - off - 8 < len) break;  // partial final write
      auto payload = std::span<const std::byte>(raw).subspan(off + 8, len);
      if (net::crc32(payload) != crc) break;
      WalRecord rec;
      try {
        rec = decode_wal_record(payload);
      } catch (const ProtocolError&) {
        break;
      }
      if (rec.lsn >= expected) {
        if (rec.lsn != expected) break;  // lsn gap: lost tail upstream
        recovery_.tail.push_back(std::move(rec));
        recovery_.records_replayable += 1;
        expected += 1;
      }
      // else: pre-base record left behind by an interrupted compaction —
      // a valid frame, already folded into the snapshot; skip silently.
      off += 8 + len;
      valid_end = off;
    }
    if (valid_end < raw.size()) {
      // Torn or corrupt tail: keep the valid prefix, drop the rest (and
      // every later segment) so the log ends at the last good record.
      recovery_.torn_bytes_truncated += raw.size() - valid_end;
      vfs::truncate_file(path, valid_end);
      torn = true;
      LOG_WARN("wal: truncated torn tail of " << path << " ("
                                              << raw.size() - valid_end
                                              << " bytes)");
      reg.counter("wal.torn_truncations").inc();
    }
    segments_.push_back(path);
    current_bytes_ = valid_end;
  }
  next_lsn_ = expected;
  recovery_.next_lsn = expected;

  if (segments_.empty()) {
    open_segment(next_lsn_);
  } else {
    // Append to the surviving last segment.
    file_ = vfs::File::append(segments_.back());
  }
  reg.gauge("wal.segments").set(static_cast<double>(segments_.size()));
}

void WalLog::open_segment(std::uint64_t first_lsn) {
  std::string path = segment_path(config_.dir, first_lsn);
  file_ = vfs::File::create(path);
  segments_.push_back(std::move(path));
  current_bytes_ = 0;
  auto& reg = obs::Registry::global();
  reg.counter("wal.segments_opened").inc();
  reg.gauge("wal.segments").set(static_cast<double>(segments_.size()));
}

bool WalLog::close_segment(bool fsync_it) {
  if (!file_.valid()) return true;
  bool ok = true;
  if (fsync_it) {
    try {
      file_.sync();
    } catch (const IoError& e) {
      LOG_WARN("wal: " << e.what());
      ok = false;
    }
  }
  file_.close();
  return ok;
}

void WalLog::mark_failed() {
  if (failed_) return;
  failed_ = true;
  // fsyncgate: the kernel may already have dropped the unsynced dirty
  // pages, so the descriptor must go — a later fsync on it would report
  // success for data that never hit the disk.
  file_.close();
  obs::Registry::global().counter("wal.failures").inc();
}

std::uint64_t WalLog::append(const WalRecord& rec) {
  if (failed_) {
    throw IoError("wal append: log is in the failed state (compact() "
                  "rebuilds it from a fresh snapshot)");
  }
  WalRecord stamped = rec;
  if (stamped.lsn == 0) {
    stamped.lsn = next_lsn_;
  } else if (stamped.lsn != next_lsn_) {
    throw ProtocolError("wal append: lsn " + std::to_string(stamped.lsn) +
                        " != expected " + std::to_string(next_lsn_));
  }
  auto payload = encode_wal_record(stamped);
  ByteWriter frame(payload.size() + 8);
  frame.u32(static_cast<std::uint32_t>(payload.size()));
  frame.u32(net::crc32(std::span<const std::byte>(payload)));
  frame.raw(payload);
  try {
    file_.write_all(frame.data());
  } catch (const IoError&) {
    // The segment may hold a torn frame now; recovery truncates it. The
    // in-memory lsn does NOT advance — the record was never logged.
    mark_failed();
    throw;
  }
  current_bytes_ += frame.data().size();
  next_lsn_ = stamped.lsn + 1;

  auto& reg = obs::Registry::global();
  reg.counter("wal.records").inc();
  reg.counter("wal.bytes").inc(frame.data().size());

  if (current_bytes_ >= config_.segment_bytes) {
    // Seal the full segment durably before its successor takes appends:
    // the durable prefix may then only ever miss current-segment tails.
    if (!close_segment(/*fsync_it=*/true)) {
      mark_failed();
      throw IoError("wal rotate: fsync of sealed segment " +
                    segments_.back() + " failed");
    }
    try {
      open_segment(next_lsn_);
    } catch (const IoError&) {
      mark_failed();
      throw;
    }
  }
  return stamped.lsn;
}

void WalLog::sync() {
  if (failed_) {
    throw IoError("wal sync: log is in the failed state (compact() "
                  "rebuilds it from a fresh snapshot)");
  }
  if (file_.valid()) {
    try {
      file_.sync();
    } catch (const IoError&) {
      mark_failed();
      throw;
    }
  }
  obs::Registry::global().counter("wal.syncs").inc();
}

void WalLog::compact(std::span<const std::byte> snapshot, double now) {
  const bool rebuilding = failed_;
  ByteWriter payload(snapshot.size() + 8);
  payload.u64(next_lsn_);
  payload.raw(snapshot);
  // Throws on failure with the log state unchanged: a healthy log stays
  // healthy (the old base + segments are intact), a failed log stays
  // failed until a later compact() succeeds.
  write_checkpoint_file(base_path(config_.dir), payload.data());
  // The snapshot is durable; every record it folded in can go. A crash
  // between these unlinks leaves stale pre-base segments behind, which
  // recovery skips record-by-record. An unlink failure is likewise
  // tolerable — but it keeps hogging disk, so count it loudly.
  close_segment(/*fsync_it=*/false);
  for (const std::string& path : segments_) {
    if (!vfs::remove_file(path)) {
      LOG_WARN("wal: could not unlink folded segment " << path);
      obs::Registry::global().counter("wal.unlink_failures").inc();
    }
  }
  segments_.clear();
  try {
    open_segment(next_lsn_);
  } catch (const IoError&) {
    mark_failed();
    throw;
  }
  failed_ = false;  // everything durable lives in the fresh base now
  auto& reg = obs::Registry::global();
  reg.counter("wal.compactions").inc();
  if (rebuilding) reg.counter("wal.rebuilds").inc();
  reg.gauge("wal.base_bytes").set(static_cast<double>(snapshot.size()));
  if (tracer_) {
    tracer_->event(now, "wal_compacted")
        .u64("lsn", next_lsn_)
        .u64("base_bytes", snapshot.size());
  }
}

void WalLog::reset(std::span<const std::byte> snapshot, std::uint64_t start_lsn,
                   double now) {
  next_lsn_ = start_lsn;
  compact(snapshot, now);
}

}  // namespace hdcs::dist
