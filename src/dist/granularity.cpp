#include "dist/granularity.hpp"

#include <algorithm>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace hdcs::dist {

double GuidedSelfScheduling::target_ops(const ClientStats& client, double remaining_ops,
                                        int active_clients) const {
  if (active_clients < 1) active_clients = 1;
  if (remaining_ops <= 0) {
    // Unknown remaining work: fall back to a rate-based chunk so slow
    // clients are not handed unbounded units.
    return client.rate_estimate() * 10.0;
  }
  return remaining_ops / (k_ * active_clients);
}

double AdaptiveThroughput::target_ops(const ClientStats& client, double remaining_ops,
                                      int active_clients) const {
  double rate = client.rate_estimate();
  if (rate <= 0) rate = 1e6;  // unknown machine: start small, EWMA corrects fast
  double ops = rate * target_seconds_;
  // Near the end of a problem, shrink units so the tail is not serialised
  // behind one big chunk on one machine (classic straggler guard).
  if (remaining_ops > 0 && active_clients > 0) {
    ops = std::min(ops, std::max(remaining_ops / active_clients, 1.0));
  }
  return ops;
}

std::unique_ptr<GranularityPolicy> make_policy(const std::string& spec) {
  auto parts = split(spec, ':');
  const std::string& kind = parts[0];
  if (kind == "fixed") {
    if (parts.size() != 2) throw InputError("fixed policy needs ops: 'fixed:<ops>'");
    return std::make_unique<FixedGranularity>(parse_f64(parts[1]));
  }
  if (kind == "guided") {
    double k = parts.size() > 1 ? parse_f64(parts[1]) : 2.0;
    return std::make_unique<GuidedSelfScheduling>(k);
  }
  if (kind == "adaptive") {
    double secs = parts.size() > 1 ? parse_f64(parts[1]) : 15.0;
    return std::make_unique<AdaptiveThroughput>(secs);
  }
  throw InputError("unknown granularity policy: " + spec);
}

}  // namespace hdcs::dist
