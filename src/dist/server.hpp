#pragma once
// TCP server: wraps SchedulerCore with the framed-message protocol.
//
// Thread model (mirrors the paper's single PIII-500 server):
//   - one acceptor thread,
//   - one handler thread per connected client (request/response loop),
//   - one housekeeping thread (lease expiry ticks).
// All SchedulerCore access is serialised by one mutex; handlers do the
// (cheap) protocol work outside it and the (cheap) scheduling inside it —
// the donors do the heavy lifting, the server never computes.

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "dist/scheduler_core.hpp"
#include "net/bulk.hpp"
#include "net/socket.hpp"

namespace hdcs::dist {

struct ServerConfig {
  std::uint16_t port = 0;  // 0 = ephemeral; read back via port()
  SchedulerConfig scheduler;
  std::string policy_spec = "adaptive:15";
  double tick_interval_s = 0.5;
  double no_work_retry_s = 0.2;
  double heartbeat_interval_s = 10.0;
  /// Durability: autosave SchedulerCore::checkpoint() to this path (tmp
  /// file + fsync + atomic rename, see checkpoint_file.hpp) every
  /// checkpoint_interval_s from the housekeeping thread, so kill -9 loses
  /// at most one interval of bookkeeping and nothing already computed.
  /// Empty = no durability (the default).
  std::string checkpoint_path;
  double checkpoint_interval_s = 30.0;
  /// On start(), restore checkpoint_path if the file exists. The caller
  /// must have re-submitted the same problems (same inputs, same order)
  /// first; see SchedulerCore::restore().
  bool restore_on_start = true;
  /// Optional structured event trace. The server stamps events with wall
  /// time (seconds since start()); must outlive the server. Not owned.
  obs::Tracer* tracer = nullptr;
  /// Largest blob the server will serve over FetchBlobs; larger interned
  /// blobs are reported absent (the donor drops the unit).
  std::size_t max_blob_bytes = net::kDefaultMaxBlobBytes;
};

class Server {
 public:
  explicit Server(ServerConfig config);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Start accepting clients.
  void start();

  /// Stop accepting, close connections, join threads. Idempotent.
  void stop();

  /// Submit a problem (thread-safe); returns its id.
  ProblemId submit_problem(std::shared_ptr<DataManager> dm);

  /// Block until the given problem completes (or the server stops).
  /// Returns true if complete.
  bool wait_for_problem(ProblemId id, double timeout_s = -1);

  /// Block until every submitted problem completes.
  bool wait_for_all(double timeout_s = -1);

  [[nodiscard]] std::vector<std::byte> final_result(ProblemId id);

  /// Snapshot all problem progress (thread-safe); see SchedulerCore.
  [[nodiscard]] std::vector<std::byte> checkpoint();
  /// Restore a checkpoint taken by an earlier server instance. Call after
  /// re-submitting the same problems (same inputs, same order), before
  /// donors connect.
  void restore_checkpoint(std::span<const std::byte> data);
  /// Write a durable checkpoint to config.checkpoint_path right now (the
  /// autosave cadence calls this too). Returns false when no path is
  /// configured. Thread-safe; serialization holds the core lock, disk I/O
  /// does not.
  bool save_checkpoint();

  [[nodiscard]] std::uint16_t port() const { return port_; }
  [[nodiscard]] SchedulerStats stats();
  /// Per-client scheduler view (includes departed clients), thread-safe.
  [[nodiscard]] std::vector<ClientInfo> client_stats();
  [[nodiscard]] int connected_clients();

  /// The JSON document served to MSG_STATS, also available in-process.
  [[nodiscard]] std::string stats_json(bool include_clients = true);

 private:
  void acceptor_loop();
  void handler_loop(net::TcpStream stream);
  void housekeeping_loop();
  double now() const;

  ServerConfig config_;
  net::TcpListener listener_;
  std::uint16_t port_ = 0;

  std::mutex core_mutex_;
  SchedulerCore core_;
  std::condition_variable progress_cv_;

  std::atomic<bool> running_{false};
  std::atomic<int> connected_{0};
  std::thread acceptor_;
  std::thread housekeeper_;
  std::mutex handlers_mutex_;
  std::vector<std::thread> handlers_;
  std::chrono::steady_clock::time_point epoch_;
};

}  // namespace hdcs::dist
