#pragma once
// TCP server: wraps SchedulerCore with the framed-message protocol.
//
// Thread model (event-loop, fixed thread budget):
//   - io_threads epoll EventLoops (loop 0 also owns the listener); each
//     connection is pinned to one loop, parsed incrementally by a
//     FrameReader, and writes through a bounded per-connection queue —
//     ten thousand idle donors cost file descriptors, not OS threads,
//   - worker_threads pool running everything that can block: scheduler
//     calls under core_mutex_, WAL fsyncs, checkpoint saves, stats JSON,
//   - one housekeeping thread (lease expiry ticks),
//   - one dedicated thread per attached hot standby (replication sessions
//     are long-lived, few, and intentionally blocking).
// A loop thread never takes core_mutex_ and never touches disk; a worker
// never touches a socket. Requests hop loop -> worker -> loop (post), with
// at most one worker job in flight per connection so responses keep their
// request order.

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "dist/scheduler_core.hpp"
#include "dist/wal.hpp"
#include "net/bulk.hpp"
#include "net/event_loop.hpp"
#include "net/message.hpp"
#include "net/socket.hpp"
#include "util/thread_pool.hpp"

namespace hdcs::dist {

/// What a primary does when its durable storage (WAL append/fsync,
/// checkpoint save) fails.
enum class DurabilityMode {
  /// Keep scheduling with durability degraded: results are accepted but a
  /// crash before the disk recovers loses them (donors were told they
  /// could drop their copies). The epoch is bumped so a later restart
  /// from the stale durable state fences everything issued during the
  /// degraded window, and a watchdog re-arms durability (WAL rebuild /
  /// checkpoint save) once the disk takes writes again.
  kContinue,
  /// Stop cleanly instead: refuse new sessions and result submissions
  /// (v7 donors get RetryLater and keep their buffered results), drain,
  /// and let the operator restart onto healthy storage. storage_failed()
  /// turns true so the embedding process can exit non-zero.
  kFailStop,
};

struct ServerConfig {
  std::uint16_t port = 0;  // 0 = ephemeral; read back via port()
  SchedulerConfig scheduler;
  std::string policy_spec = "adaptive:15";
  double tick_interval_s = 0.5;
  double no_work_retry_s = 0.2;
  double heartbeat_interval_s = 10.0;
  /// Durability: autosave SchedulerCore::checkpoint() to this path (tmp
  /// file + fsync + atomic rename, see checkpoint_file.hpp) every
  /// checkpoint_interval_s from the housekeeping thread, so kill -9 loses
  /// at most one interval of bookkeeping and nothing already computed.
  /// Empty = no durability (the default).
  std::string checkpoint_path;
  double checkpoint_interval_s = 30.0;
  /// On start(), restore checkpoint_path if the file exists. The caller
  /// must have re-submitted the same problems (same inputs, same order)
  /// first; see SchedulerCore::restore().
  bool restore_on_start = true;
  /// Optional structured event trace. The server stamps events with wall
  /// time (seconds since start()); must outlive the server. Not owned.
  obs::Tracer* tracer = nullptr;
  /// Largest blob the server will serve over FetchBlobs; larger interned
  /// blobs are reported absent (the donor drops the unit).
  std::size_t max_blob_bytes = net::kDefaultMaxBlobBytes;

  // ---- write-ahead log (see dist/wal.hpp) ----

  /// WAL directory. Empty = no WAL (the 30 s checkpoint window applies).
  /// When set, every SchedulerCore mutation is logged under the core lock
  /// and a result is fsynced durable *before* its ack is sent — a kill -9
  /// then loses zero accepted results. start() recovers base snapshot +
  /// tail, replays, and enters a new epoch; the legacy checkpoint_path
  /// restore is skipped when the WAL held anything.
  std::string wal_dir;
  std::size_t wal_segment_bytes = 4u << 20;
  /// Fold the log into a fresh base snapshot every this many records
  /// (compaction; 0 = never). Runs on the housekeeping thread.
  std::uint64_t wal_compact_every = 4096;

  // ---- durability degradation (see DurabilityMode) ----

  DurabilityMode durability_mode = DurabilityMode::kContinue;
  /// Degraded-state re-arm cadence: every this many seconds the
  /// housekeeping thread tries to rebuild the WAL (or save a checkpoint)
  /// and restore `durable`.
  double rearm_retry_s = 1.0;
  /// Disk-budget watchdog: when the WAL directory exceeds this many
  /// bytes, force a compaction to shed folded segments before the disk
  /// actually fills. 0 = off.
  std::uint64_t wal_dir_budget_bytes = 0;

  // ---- overload control ----

  /// Shed Hello when this many clients are already active (v7 donors get
  /// RetryLater and back off; older ones get an error and ride their
  /// reconnect backoff). 0 = unbounded.
  int max_clients = 0;
  /// Global cap on FetchBlobs response bytes in flight across all
  /// connections (bodies are held in memory from collection until the
  /// socket write finishes). Requests that would exceed it get RetryLater.
  /// 0 = unbounded.
  std::size_t blob_inflight_budget_bytes = 0;
  /// retry_after_s stamped into RetryLater NACKs.
  double retry_later_s = 0.5;

  // ---- event-loop I/O ----

  /// Epoll loops driving connection I/O. One loop handles thousands of
  /// donors; add loops only when a single core saturates on framing.
  int io_threads = 1;
  /// Workers running scheduler calls, WAL fsyncs and checkpoint saves so
  /// the loop threads never block on the core mutex or on disk.
  int worker_threads = 4;
  /// Per-connection write-queue bound. Above it the connection's reads are
  /// paused (backpressure) until the donor drains half; a donor that stops
  /// draining entirely is shed after write_stall_timeout_s.
  std::size_t max_write_buffer_bytes = 64u << 20;
  double write_stall_timeout_s = 30.0;

  // ---- hot standby (protocol v6 replication) ----

  /// Non-empty = start as a hot standby of this primary: sync an exact
  /// snapshot, tail its WAL stream into a shadow core (and into wal_dir if
  /// set), answer donors with a "standby" error, and promote — bump the
  /// epoch and start serving — once the stream has been silent for
  /// failover_timeout_s after a successful sync.
  std::string primary_host;
  std::uint16_t primary_port = 0;
  double failover_timeout_s = 2.0;
  std::string standby_name = "standby";
};

class Server {
 public:
  explicit Server(ServerConfig config);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Start accepting clients.
  void start();

  /// Stop accepting, close connections, join threads. Idempotent.
  void stop();

  /// Submit a problem (thread-safe); returns its id.
  ProblemId submit_problem(std::shared_ptr<DataManager> dm);

  /// Block until the given problem completes (or the server stops).
  /// Returns true if complete.
  bool wait_for_problem(ProblemId id, double timeout_s = -1);

  /// Block until every submitted problem completes.
  bool wait_for_all(double timeout_s = -1);

  [[nodiscard]] std::vector<std::byte> final_result(ProblemId id);

  /// Snapshot all problem progress (thread-safe); see SchedulerCore.
  [[nodiscard]] std::vector<std::byte> checkpoint();
  /// Restore a checkpoint taken by an earlier server instance. Call after
  /// re-submitting the same problems (same inputs, same order), before
  /// donors connect.
  void restore_checkpoint(std::span<const std::byte> data);
  /// Write a durable checkpoint to config.checkpoint_path right now (the
  /// autosave cadence calls this too). Returns false when no path is
  /// configured. Thread-safe; serialization holds the core lock, disk I/O
  /// does not.
  bool save_checkpoint();

  [[nodiscard]] std::uint16_t port() const { return port_; }
  [[nodiscard]] SchedulerStats stats();
  /// Per-client scheduler view (includes departed clients), thread-safe.
  [[nodiscard]] std::vector<ClientInfo> client_stats();
  [[nodiscard]] int connected_clients();

  /// The JSON document served to MSG_STATS, also available in-process.
  [[nodiscard]] std::string stats_json(bool include_clients = true);

  /// Durability state surfaced in MSG_STATS and hdcs_top. kNone = no WAL
  /// and no checkpoint path configured (nothing to degrade from).
  enum class Durability { kNone = 0, kDurable = 1, kDegraded = 2 };
  [[nodiscard]] Durability durability() const {
    return static_cast<Durability>(durability_.load());
  }
  /// True once a fail-stop server has hit a storage fault: it is draining
  /// and the embedding process should checkpoint what it can and exit
  /// non-zero.
  [[nodiscard]] bool storage_failed() const { return storage_failed_.load(); }

  /// True while running as a hot standby that has not yet promoted.
  [[nodiscard]] bool is_standby() const { return standby_.load(); }
  /// True once a standby has received the primary's snapshot.
  [[nodiscard]] bool standby_synced() const { return standby_synced_.load(); }
  /// Current scheduler term (see SchedulerCore::epoch()). Thread-safe.
  [[nodiscard]] std::uint64_t epoch();
  /// Force an immediate WAL compaction (fold log into base snapshot).
  /// No-op without a WAL. Thread-safe.
  void compact_wal();
  /// Stop handing out work: donors receive kShutdown on their next
  /// RequestWork or Heartbeat and disconnect cleanly. Used by the
  /// SIGINT/SIGTERM path in the examples before stop().
  void drain();

 private:
  struct ReplicaFeed;  // per-standby queue of encoded WAL records
  struct IoLoop;       // an EventLoop + its thread + its connections
  struct Conn;         // per-connection state machine (loop-thread owned)
  struct HandlerOutcome;  // worker -> loop: encoded response chunks

  // Event-loop path. All conn_* methods run on the connection's loop
  // thread; handle_request runs on a worker.
  void accept_ready();
  void register_conn(IoLoop& io, net::TcpStream stream);
  void conn_event(std::shared_ptr<Conn> c, std::uint32_t events);
  void conn_readable(const std::shared_ptr<Conn>& c);
  void conn_flush(const std::shared_ptr<Conn>& c);
  void conn_enqueue(const std::shared_ptr<Conn>& c,
                    std::vector<std::byte> bytes, std::size_t release);
  void conn_pump(const std::shared_ptr<Conn>& c);
  void conn_disconnect(std::shared_ptr<Conn> c, const char* reason);
  void sync_conn_events(const std::shared_ptr<Conn>& c);
  void sweep_conns(IoLoop& io);
  HandlerOutcome handle_request(const std::shared_ptr<Conn>& c,
                                const net::Message& request);
  void deliver(const std::shared_ptr<Conn>& c, HandlerOutcome out);
  void detach_replica(const std::shared_ptr<Conn>& c, net::Message hello);
  void client_left_async(ClientId id);

  void housekeeping_loop();
  void serve_replica(net::TcpStream& stream, const net::Message& hello);
  void replica_loop();  // standby: sync + tail the primary, promote on silence
  void promote(const char* reason);
  // All four require core_mutex_ held.
  void log_record(WalRecord rec);
  void enter_new_term(const char* reason, double t);
  void maybe_compact_locked(double t);
  void degrade_locked(const char* reason, double t);
  /// Housekeeping: attempt the degraded -> durable transition (WAL rebuild
  /// or checkpoint save). Takes the core lock itself.
  bool try_rearm();
  double now() const;

  ServerConfig config_;
  net::TcpListener listener_;
  std::uint16_t port_ = 0;

  std::mutex core_mutex_;
  SchedulerCore core_;
  std::condition_variable progress_cv_;

  std::atomic<bool> running_{false};
  std::atomic<int> connected_{0};
  std::vector<std::unique_ptr<IoLoop>> io_;
  std::unique_ptr<ThreadPool> workers_;
  std::size_t next_loop_ = 0;  // round-robin conn placement; loop-0 thread
  std::atomic<std::size_t> write_hwm_{0};
  std::thread housekeeper_;
  std::mutex replica_threads_mutex_;
  std::vector<std::thread> replica_threads_;
  std::chrono::steady_clock::time_point epoch_;

  // WAL + replication state. wal_, repl_lsn_ and feeds_ are guarded by
  // core_mutex_ (records are logged in core-mutation order).
  std::unique_ptr<WalLog> wal_;
  std::uint64_t repl_lsn_ = 1;  // next stream lsn when no WAL is configured
  std::uint64_t last_compact_lsn_ = 1;
  std::vector<std::shared_ptr<ReplicaFeed>> feeds_;
  std::atomic<bool> standby_{false};
  std::atomic<bool> standby_synced_{false};
  std::atomic<bool> draining_{false};
  std::thread replica_;

  // Durability state machine + overload accounting. durability_ holds a
  // Durability value; transitions happen under core_mutex_ (reads are
  // lock-free for stats/guards).
  std::atomic<int> durability_{0};
  std::atomic<bool> storage_failed_{false};
  std::atomic<std::uint64_t> blob_inflight_bytes_{0};
};

}  // namespace hdcs::dist
