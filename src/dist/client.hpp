#pragma once
// Donor client: the process that runs on spare machines.
//
// Connects to the server, reports a self-measured benchmark score (so the
// scheduler can size the first unit before any EWMA data exists), then
// loops: request work -> (fetch problem data once per problem) -> run the
// registered Algorithm -> submit the result. Designed to run "as a low
// priority background service" (paper §3); priority is the deployer's
// concern (nice/SCHED_IDLE), not this class's.
//
// Session resilience: any transport or framing failure — initial connect,
// a mid-loop read/write, a corrupt frame, the server restarting — is
// retried on a fresh connection with capped exponential backoff + jitter
// instead of killing the donor. The new session re-Hellos (new client id),
// and a computed-but-unsubmitted result is buffered across the reconnect
// and resubmitted so the unit is never recomputed. Heartbeats ride their
// own connection with the same reconnect policy.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "dist/registry.hpp"
#include "dist/wire.hpp"
#include "net/blob_cache.hpp"
#include "net/bulk.hpp"
#include "net/socket.hpp"
#include "obs/span_profile.hpp"
#include "util/rng.hpp"

namespace hdcs::obs {
class Tracer;
}

namespace hdcs::dist {

struct ServerEndpoint {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
};

struct ClientConfig {
  std::string server_host = "127.0.0.1";
  std::uint16_t server_port = 0;
  /// Ordered failover list (v6 hot-standby deployments): non-empty
  /// supersedes server_host/server_port. The donor sticks with the
  /// endpoint that last answered and rotates to the next on a failed
  /// connect or handshake — an unpromoted standby rejects Hello with an
  /// error, so donors naturally skip past it until it promotes.
  std::vector<ServerEndpoint> servers;
  std::string name = "donor";
  /// Stop when the server reports all problems complete (used by tests and
  /// examples; a real deployment would keep waiting for new problems).
  bool exit_when_idle = true;
  /// Max consecutive "no work" responses before exiting when exit_when_idle.
  int max_idle_polls = 10000;
  /// Artificial throttle multiplier for heterogeneity experiments on one
  /// box: sleep (throttle-1)x the compute time of each unit. 0/1 = off.
  double throttle = 1.0;
  /// Fault injection: crash (vanish without submitting or saying Goodbye)
  /// right after computing the Nth unit. -1 = never.
  int crash_after_units = -1;
  /// Compute fault injection (test-only): corrupt this fraction of result
  /// payloads before submitting, modelling flaky RAM or a hostile donor.
  /// The corrupted payload gets a *matching* digest — a lying donor is
  /// self-consistent, so only replication voting can catch it. Draws are
  /// deterministic per (corrupt_seed, donor name, unit id). 0 = off.
  double corrupt_rate = 0.0;
  std::uint64_t corrupt_seed = 0;
  /// Send heartbeats on a second connection so long computations don't
  /// trip the server's client timeout. Interval comes from the HelloAck;
  /// set false to emulate a heartbeat-less legacy client in tests.
  bool send_heartbeats = true;
  /// Worker threads used *inside* each unit (Algorithm::set_parallelism):
  /// a multi-core donor splits a unit's independent pieces (e.g. DSEARCH
  /// database blocks) across threads with a deterministic merge, so the
  /// submitted payload is byte-identical to single-threaded execution.
  /// Contrast run_pool(), which runs whole independent donors per CPU.
  std::size_t exec_threads = 1;
  /// Consecutive failed connect+Hello attempts before the donor gives up
  /// (run() throws IoError). 1 = fail fast (the pre-reconnect behaviour);
  /// <= 0 = retry forever (service mode).
  int max_connect_attempts = 8;
  /// Reconnect backoff: delay starts at backoff_initial_s, doubles per
  /// consecutive failure up to backoff_max_s, and each wait is scaled by a
  /// deterministic (per-name) jitter in [1-backoff_jitter, 1+backoff_jitter]
  /// so a donor herd doesn't stampede a restarted server.
  double backoff_initial_s = 0.05;
  double backoff_max_s = 2.0;
  double backoff_jitter = 0.25;
  /// The backoff escalation persists across sessions — a donor that
  /// reconnects and immediately loses the server again must not restart
  /// from the short initial delay. Only a demonstrably healthy session
  /// resets it: this many consecutive heartbeat acks. <= 0 disables the
  /// reset (escalation then persists for the donor's lifetime).
  int backoff_reset_beats = 3;
  /// Protocol version this donor speaks. 3 emulates a legacy donor from
  /// before the content-addressed data plane (the server flattens blob
  /// references back into the payload for it); 4 (the default) negotiates
  /// HAVE/NEED blob transfers through the cache below.
  int protocol_version = net::kProtocolVersion;
  /// Largest single blob this donor will accept on the bulk channel; a
  /// corrupt length header can cost at most this much allocation.
  std::size_t max_blob_bytes = net::kDefaultMaxBlobBytes;
  /// v4 blob cache: LRU memory-tier budget, plus an optional disk tier
  /// (empty dir = memory only) that survives donor restarts.
  std::size_t blob_cache_bytes = 64ull * 1024 * 1024;
  std::string blob_cache_dir;
  std::size_t blob_cache_disk_bytes = 256ull * 1024 * 1024;
  /// Optional structured event trace (blob_cache_hit events, stamped with
  /// wall seconds since this client was constructed). Not owned.
  obs::Tracer* tracer = nullptr;
  const AlgorithmRegistry* registry = &AlgorithmRegistry::global();
};

/// Reconnect backoff that survives sessions. Each failed attempt escalates
/// the delay (x2, capped); merely reconnecting does NOT reset it — the
/// session must prove healthy (`reset_beats` consecutive heartbeat acks)
/// first, so a donor flapping against a sick server keeps paying the long
/// delays instead of hammering it, while one that survived a single blip
/// soon earns the short initial delay back. Thread-safe: the work loop
/// calls next_delay(), the heartbeat thread calls heartbeat_ok() /
/// session_lost().
class ReconnectBackoff {
 public:
  ReconnectBackoff(double initial_s, double max_s, int reset_beats)
      : initial_s_(initial_s), max_s_(max_s), reset_beats_(reset_beats) {}

  /// Delay to wait before the next reconnect attempt (escalates per call).
  double next_delay() {
    std::lock_guard lock(m_);
    delay_ = (delay_ <= 0) ? initial_s_ : std::min(delay_ * 2.0, max_s_);
    return delay_;
  }

  /// A heartbeat ack landed. Returns true when the streak just reset the
  /// escalation back to the initial delay.
  bool heartbeat_ok() {
    std::lock_guard lock(m_);
    beats_ += 1;
    if (reset_beats_ > 0 && beats_ >= reset_beats_ && delay_ > 0) {
      delay_ = 0;
      beats_ = 0;
      return true;
    }
    return false;
  }

  /// The session died: the ack streak restarts (escalation is kept).
  void session_lost() {
    std::lock_guard lock(m_);
    beats_ = 0;
  }

  /// Last delay handed out; 0 = fully reset (next attempt waits initial).
  [[nodiscard]] double current_delay() const {
    std::lock_guard lock(m_);
    return delay_;
  }

 private:
  mutable std::mutex m_;
  double initial_s_;
  double max_s_;
  int reset_beats_;
  double delay_ = 0;
  int beats_ = 0;
};

struct ClientRunStats {
  std::uint64_t units_processed = 0;
  std::uint64_t idle_polls = 0;
  /// Sessions re-established after a transport failure (initial connect
  /// retries don't count until the first session exists).
  std::uint64_t reconnects = 0;
  /// Buffered results that had to be submitted on a later session.
  std::uint64_t results_resubmitted = 0;
  /// RetryLater NACKs honoured (v7 overload/fail-stop shedding): the donor
  /// waited retry_after_s and retried instead of dropping state.
  std::uint64_t retry_laters = 0;
  double compute_seconds = 0;
};

class Client {
 public:
  explicit Client(ClientConfig config);

  /// Run the donor loop to completion (connects, works, says goodbye).
  /// Throws IoError if the server is unreachable.
  ClientRunStats run();

  /// Ask a running client (from another thread) to stop after the current
  /// unit. The client sends Goodbye so its lease is requeued immediately.
  void request_stop() { stop_.store(true); }

  /// Ask a running client to die abruptly (no Goodbye) — fault injection
  /// for lease-expiry tests.
  void request_crash() { crash_.store(true); }

  /// Synthetic CPU benchmark in abstract ops/sec (public for tests).
  static double measure_benchmark();

  /// Run `count` donor clients concurrently — one per CPU of a multi-core
  /// donor (the paper's dual-PIII cluster nodes contributed both CPUs).
  /// Each client gets the base name suffixed "-cpuN" and its own
  /// connections. Blocks until all are done.
  static std::vector<ClientRunStats> run_pool(const ClientConfig& base,
                                              int count);

 private:
  struct ProblemContext {
    std::unique_ptr<Algorithm> algorithm;
  };

  ProblemContext& context_for(net::TcpStream& stream, ProblemId id);

  /// Stamp the configured protocol version on `m` and send it — every
  /// frame a donor writes carries its version so the server can answer in
  /// kind.
  void send_message(net::TcpStream& stream, net::Message m);

  /// Resolve every blob the unit references: cache hits fill in the bytes
  /// locally, misses are batched into one FetchBlobs round-trip. Returns
  /// false when the server no longer holds a referenced blob (the unit
  /// completed via a replica while our request was in flight) — the caller
  /// drops the unit and asks for fresh work. Present bodies are always
  /// drained off the stream (and cached) even on a partial miss, so the
  /// connection stays in sync.
  bool ensure_blobs(net::TcpStream& stream, WorkUnit& unit);

  /// Send a FetchBlobs request and read its reply, riding RetryLater NACKs
  /// (blob-budget shedding): wait retry_after_s and resend on the same
  /// connection. Throws IoError if stop/crash interrupts the wait.
  net::Message fetch_blobs_round(net::TcpStream& stream,
                                 const FetchBlobsPayload& need);

  /// Record an honoured RetryLater NACK (stats + counter + log).
  void note_retry_later(const RetryLaterPayload& nack);

  /// Single-digest variant used for problem data (v4). nullopt = gone.
  std::optional<std::vector<std::byte>> resolve_blob(net::TcpStream& stream,
                                                     std::uint64_t digest);

  /// Wall seconds since construction — the clock blob trace events use.
  double now() const;

  /// Connect + Hello with exponential backoff. On success `stream` holds
  /// the new session and my_id_ is updated. Returns false if stop/crash
  /// was requested while waiting; rethrows the last transport error once
  /// max_connect_attempts consecutive failures accumulate.
  bool connect_session(net::TcpStream& stream, double benchmark);
  /// Re-register on an existing connection (server restarted or expired
  /// our id): send Hello, adopt the newly assigned client id.
  void rehello(net::TcpStream& stream, double benchmark);
  /// Sleep ~delay seconds in small slices; false if stop/crash interrupted.
  bool backoff_wait(double delay);

  /// The endpoint the next connect will try (work + heartbeat connections
  /// follow the same cursor so both roll over together).
  const ServerEndpoint& endpoint() const {
    return endpoints_[endpoint_.load() % endpoints_.size()];
  }
  void rotate_endpoint() {
    if (endpoints_.size() > 1) endpoint_.fetch_add(1);
  }

  ClientConfig config_;
  std::vector<ServerEndpoint> endpoints_;
  std::atomic<std::size_t> endpoint_{0};
  ReconnectBackoff backoff_;
  net::BlobCache blob_cache_;
  /// Span profile of the unit currently being processed. Reset when an
  /// assignment is decoded; context_for/ensure_blobs/resolve_blob
  /// accumulate blob-fetch and decompress spans into it; attached to the
  /// outgoing ResultUnit when the donor speaks protocol >= 5.
  obs::UnitProfile profile_;
  std::chrono::steady_clock::time_point epoch_;
  std::map<ProblemId, ProblemContext> contexts_;
  std::atomic<bool> stop_{false};
  std::atomic<bool> crash_{false};
  std::atomic<ClientId> my_id_{0};  // heartbeat thread reads across re-Hellos
  double heartbeat_interval_ = 0;   // from the first HelloAck
  Rng backoff_rng_;
  std::uint64_t next_correlation_ = 1;
  std::uint64_t retry_laters_ = 0;  // work-loop thread only
};

}  // namespace hdcs::dist
