#pragma once
// Donor client: the process that runs on spare machines.
//
// Connects to the server, reports a self-measured benchmark score (so the
// scheduler can size the first unit before any EWMA data exists), then
// loops: request work -> (fetch problem data once per problem) -> run the
// registered Algorithm -> submit the result. Designed to run "as a low
// priority background service" (paper §3); priority is the deployer's
// concern (nice/SCHED_IDLE), not this class's.

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <thread>

#include "dist/registry.hpp"
#include "dist/wire.hpp"
#include "net/socket.hpp"

namespace hdcs::dist {

struct ClientConfig {
  std::string server_host = "127.0.0.1";
  std::uint16_t server_port = 0;
  std::string name = "donor";
  /// Stop when the server reports all problems complete (used by tests and
  /// examples; a real deployment would keep waiting for new problems).
  bool exit_when_idle = true;
  /// Max consecutive "no work" responses before exiting when exit_when_idle.
  int max_idle_polls = 10000;
  /// Artificial throttle multiplier for heterogeneity experiments on one
  /// box: sleep (throttle-1)x the compute time of each unit. 0/1 = off.
  double throttle = 1.0;
  /// Fault injection: crash (vanish without submitting or saying Goodbye)
  /// right after computing the Nth unit. -1 = never.
  int crash_after_units = -1;
  /// Send heartbeats on a second connection so long computations don't
  /// trip the server's client timeout. Interval comes from the HelloAck;
  /// set false to emulate a heartbeat-less legacy client in tests.
  bool send_heartbeats = true;
  /// Worker threads used *inside* each unit (Algorithm::set_parallelism):
  /// a multi-core donor splits a unit's independent pieces (e.g. DSEARCH
  /// database blocks) across threads with a deterministic merge, so the
  /// submitted payload is byte-identical to single-threaded execution.
  /// Contrast run_pool(), which runs whole independent donors per CPU.
  std::size_t exec_threads = 1;
  const AlgorithmRegistry* registry = &AlgorithmRegistry::global();
};

struct ClientRunStats {
  std::uint64_t units_processed = 0;
  std::uint64_t idle_polls = 0;
  double compute_seconds = 0;
};

class Client {
 public:
  explicit Client(ClientConfig config);

  /// Run the donor loop to completion (connects, works, says goodbye).
  /// Throws IoError if the server is unreachable.
  ClientRunStats run();

  /// Ask a running client (from another thread) to stop after the current
  /// unit. The client sends Goodbye so its lease is requeued immediately.
  void request_stop() { stop_.store(true); }

  /// Ask a running client to die abruptly (no Goodbye) — fault injection
  /// for lease-expiry tests.
  void request_crash() { crash_.store(true); }

  /// Synthetic CPU benchmark in abstract ops/sec (public for tests).
  static double measure_benchmark();

  /// Run `count` donor clients concurrently — one per CPU of a multi-core
  /// donor (the paper's dual-PIII cluster nodes contributed both CPUs).
  /// Each client gets the base name suffixed "-cpuN" and its own
  /// connections. Blocks until all are done.
  static std::vector<ClientRunStats> run_pool(const ClientConfig& base,
                                              int count);

 private:
  struct ProblemContext {
    std::unique_ptr<Algorithm> algorithm;
  };

  ProblemContext& context_for(net::TcpStream& stream, ProblemId id);

  ClientConfig config_;
  std::map<ProblemId, ProblemContext> contexts_;
  std::atomic<bool> stop_{false};
  std::atomic<bool> crash_{false};
  std::uint64_t next_correlation_ = 1;
};

}  // namespace hdcs::dist
