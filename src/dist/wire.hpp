#pragma once
// Wire encodings of the dist-layer message payloads.
//
// Kept separate from SchedulerCore so the scheduler stays transport-free.
// Every encode has a matching decode; round-trip tests pin the format.

#include <cstdint>
#include <string>

#include "dist/work.hpp"
#include "net/message.hpp"

namespace hdcs::dist {

struct HelloPayload {
  std::string client_name;
  std::uint32_t cores = 1;
  double benchmark_ops_per_sec = 0;
};

struct HelloAckPayload {
  ClientId client_id = 0;
  double heartbeat_interval_s = 30.0;
};

struct NoWorkPayload {
  double retry_after_s = 1.0;
  bool all_problems_complete = false;
};

struct FetchProblemDataPayload {
  ProblemId problem_id = 0;
};

struct ProblemDataHeaderPayload {
  ProblemId problem_id = 0;
  std::string algorithm_name;
  /// The blob itself follows on the bulk channel after this frame.
  std::uint64_t data_bytes = 0;
};

struct ResultAckPayload {
  bool accepted = false;
};

/// MSG_STATS request: any monitoring client (hdcs_top, a dashboard) may
/// send this on a plain connection without saying Hello first.
struct FetchStatsPayload {
  /// Include the per-client table (one entry per donor ever seen). Off for
  /// high-frequency pollers that only want the aggregate counters.
  bool include_clients = true;
};

/// MSG_STATS reply: one JSON document (schema documented in
/// docs/OBSERVABILITY.md) carrying scheduler stats, per-client stats and
/// the process metrics registry snapshot.
struct StatsSnapshotPayload {
  std::string json;
};

net::Message encode_hello(const HelloPayload& p, std::uint64_t correlation);
HelloPayload decode_hello(const net::Message& m);

net::Message encode_hello_ack(const HelloAckPayload& p, std::uint64_t correlation);
HelloAckPayload decode_hello_ack(const net::Message& m);

net::Message encode_request_work(ClientId client, std::uint64_t correlation);
ClientId decode_request_work(const net::Message& m);

net::Message encode_work_assignment(const WorkUnit& unit, std::uint64_t correlation);
WorkUnit decode_work_assignment(const net::Message& m);

net::Message encode_no_work(const NoWorkPayload& p, std::uint64_t correlation);
NoWorkPayload decode_no_work(const net::Message& m);

net::Message encode_submit_result(ClientId client, const ResultUnit& result,
                                  std::uint64_t correlation);
std::pair<ClientId, ResultUnit> decode_submit_result(const net::Message& m);

net::Message encode_result_ack(const ResultAckPayload& p, std::uint64_t correlation);
ResultAckPayload decode_result_ack(const net::Message& m);

net::Message encode_fetch_problem_data(const FetchProblemDataPayload& p,
                                       std::uint64_t correlation);
FetchProblemDataPayload decode_fetch_problem_data(const net::Message& m);

net::Message encode_problem_data_header(const ProblemDataHeaderPayload& p,
                                        std::uint64_t correlation);
ProblemDataHeaderPayload decode_problem_data_header(const net::Message& m);

net::Message encode_heartbeat(ClientId client, std::uint64_t correlation);
ClientId decode_heartbeat(const net::Message& m);

net::Message encode_goodbye(ClientId client, std::uint64_t correlation);
ClientId decode_goodbye(const net::Message& m);

net::Message encode_fetch_stats(const FetchStatsPayload& p,
                                std::uint64_t correlation);
FetchStatsPayload decode_fetch_stats(const net::Message& m);

net::Message encode_stats_snapshot(const StatsSnapshotPayload& p,
                                   std::uint64_t correlation);
StatsSnapshotPayload decode_stats_snapshot(const net::Message& m);

}  // namespace hdcs::dist
