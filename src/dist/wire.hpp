#pragma once
// Wire encodings of the dist-layer message payloads.
//
// Kept separate from SchedulerCore so the scheduler stays transport-free.
// Every encode has a matching decode; round-trip tests pin the format.

#include <cstdint>
#include <string>

#include "dist/work.hpp"
#include "net/message.hpp"

namespace hdcs::dist {

struct HelloPayload {
  std::string client_name;
  std::uint32_t cores = 1;
  double benchmark_ops_per_sec = 0;
};

struct HelloAckPayload {
  ClientId client_id = 0;
  double heartbeat_interval_s = 30.0;
};

struct NoWorkPayload {
  double retry_after_s = 1.0;
  bool all_problems_complete = false;
};

/// v7 retryable NACK: the server is shedding load (max_clients, blob
/// budget) or running with degraded durability — the request was NOT
/// applied; back off retry_after_s and retry it verbatim.
struct RetryLaterPayload {
  double retry_after_s = 1.0;
  std::string reason;  // "max_clients" | "blob_budget" | "degraded" | ...
};

struct FetchProblemDataPayload {
  ProblemId problem_id = 0;
};

struct ProblemDataHeaderPayload {
  ProblemId problem_id = 0;
  std::string algorithm_name;
  /// v3: the blob itself follows on the bulk channel after this frame.
  /// v4: nothing follows — the donor resolves `data_digest` through its
  /// blob cache / FetchBlobs like any other blob.
  std::uint64_t data_bytes = 0;
  /// Content digest of the problem data (v4 frames only; 0 on v3).
  std::uint64_t data_digest = 0;
};

/// v4 NEED list: the digests a donor wants after checking its cache.
struct FetchBlobsPayload {
  ClientId client_id = 0;
  std::vector<std::uint64_t> digests;
};

/// v4 reply header. For every requested digest, whether the server still
/// holds it (a blob can vanish when its last referencing unit completes
/// while the request was in flight — the donor then just drops the unit).
/// Present blobs follow on the bulk channel, in order, in the v4
/// compressed format (net::send_blob_v4).
struct BlobDataPayload {
  struct Entry {
    std::uint64_t digest = 0;
    bool present = false;
  };
  std::vector<Entry> blobs;
};

struct ResultAckPayload {
  bool accepted = false;
};

/// MSG_STATS request: any monitoring client (hdcs_top, a dashboard) may
/// send this on a plain connection without saying Hello first.
struct FetchStatsPayload {
  /// Include the per-client table (one entry per donor ever seen). Off for
  /// high-frequency pollers that only want the aggregate counters.
  bool include_clients = true;
};

/// MSG_STATS reply: one JSON document (schema documented in
/// docs/OBSERVABILITY.md) carrying scheduler stats, per-client stats and
/// the process metrics registry snapshot.
struct StatsSnapshotPayload {
  std::string json;
};

/// v6 replication handshake: a hot standby introduces itself to the
/// primary and asks for the sync stream (snapshot + live WAL records).
struct ReplicaHelloPayload {
  std::string standby_name;
};

/// v6 sync header: the primary's current term and the lsn at which the
/// live record stream will resume. The exact-snapshot bytes
/// (SchedulerCore::snapshot_exact) follow on the bulk channel
/// (net::send_blob_v4), like problem data.
struct ReplicaSnapshotPayload {
  std::uint64_t epoch = 0;
  std::uint64_t start_lsn = 1;
  std::uint64_t snapshot_bytes = 0;
};

/// v6 live stream: a batch of WAL record payloads (encode_wal_record
/// bytes, lsn-contiguous). Sent primary -> standby; the standby acks with
/// a ResultAck so the primary notices a dead or wedged standby.
struct WalAppendPayload {
  std::vector<std::vector<std::byte>> records;
};

net::Message encode_hello(const HelloPayload& p, std::uint64_t correlation);
HelloPayload decode_hello(const net::Message& m);

net::Message encode_hello_ack(const HelloAckPayload& p, std::uint64_t correlation);
HelloAckPayload decode_hello_ack(const net::Message& m);

net::Message encode_request_work(ClientId client, std::uint64_t correlation);
ClientId decode_request_work(const net::Message& m);

/// `version` picks the frame format: v3 writes the legacy payload-only
/// shape (bit-identical to the old encoder — the caller must have
/// flattened any blobs into `payload` first); v4 appends the blob
/// reference list {digest, size} after the payload. Decode keys off the
/// frame's own version field.
net::Message encode_work_assignment(const WorkUnit& unit, std::uint64_t correlation,
                                    std::uint16_t version = net::kProtocolVersion);
WorkUnit decode_work_assignment(const net::Message& m);

net::Message encode_no_work(const NoWorkPayload& p, std::uint64_t correlation);
NoWorkPayload decode_no_work(const net::Message& m);

net::Message encode_retry_later(const RetryLaterPayload& p,
                                std::uint64_t correlation);
RetryLaterPayload decode_retry_later(const net::Message& m);

/// v5 appends the optional span-profile trailer (presence flag + phase
/// durations); v3/v4 write the legacy payload-only shape. Decode keys off
/// the frame's own version field.
net::Message encode_submit_result(ClientId client, const ResultUnit& result,
                                  std::uint64_t correlation,
                                  std::uint16_t version = net::kProtocolVersion);
std::pair<ClientId, ResultUnit> decode_submit_result(const net::Message& m);

net::Message encode_result_ack(const ResultAckPayload& p, std::uint64_t correlation);
ResultAckPayload decode_result_ack(const net::Message& m);

net::Message encode_fetch_problem_data(const FetchProblemDataPayload& p,
                                       std::uint64_t correlation);
FetchProblemDataPayload decode_fetch_problem_data(const net::Message& m);

/// v4 appends data_digest; decode keys off the frame version.
net::Message encode_problem_data_header(const ProblemDataHeaderPayload& p,
                                        std::uint64_t correlation,
                                        std::uint16_t version = net::kProtocolVersion);
ProblemDataHeaderPayload decode_problem_data_header(const net::Message& m);

net::Message encode_fetch_blobs(const FetchBlobsPayload& p,
                                std::uint64_t correlation);
FetchBlobsPayload decode_fetch_blobs(const net::Message& m);

net::Message encode_blob_data(const BlobDataPayload& p,
                              std::uint64_t correlation);
BlobDataPayload decode_blob_data(const net::Message& m);

net::Message encode_heartbeat(ClientId client, std::uint64_t correlation);
ClientId decode_heartbeat(const net::Message& m);

net::Message encode_goodbye(ClientId client, std::uint64_t correlation);
ClientId decode_goodbye(const net::Message& m);

net::Message encode_fetch_stats(const FetchStatsPayload& p,
                                std::uint64_t correlation);
FetchStatsPayload decode_fetch_stats(const net::Message& m);

net::Message encode_stats_snapshot(const StatsSnapshotPayload& p,
                                   std::uint64_t correlation);
StatsSnapshotPayload decode_stats_snapshot(const net::Message& m);

net::Message encode_replica_hello(const ReplicaHelloPayload& p,
                                  std::uint64_t correlation);
ReplicaHelloPayload decode_replica_hello(const net::Message& m);

net::Message encode_replica_snapshot(const ReplicaSnapshotPayload& p,
                                     std::uint64_t correlation);
ReplicaSnapshotPayload decode_replica_snapshot(const net::Message& m);

net::Message encode_wal_append(const WalAppendPayload& p,
                               std::uint64_t correlation);
WalAppendPayload decode_wal_append(const net::Message& m);

}  // namespace hdcs::dist
