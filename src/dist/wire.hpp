#pragma once
// Wire encodings of the dist-layer message payloads.
//
// Kept separate from SchedulerCore so the scheduler stays transport-free.
// Every encode has a matching decode; round-trip tests pin the format.

#include <cstdint>
#include <string>

#include "dist/work.hpp"
#include "net/message.hpp"

namespace hdcs::dist {

struct HelloPayload {
  std::string client_name;
  std::uint32_t cores = 1;
  double benchmark_ops_per_sec = 0;
};

struct HelloAckPayload {
  ClientId client_id = 0;
  double heartbeat_interval_s = 30.0;
};

struct NoWorkPayload {
  double retry_after_s = 1.0;
  bool all_problems_complete = false;
};

struct FetchProblemDataPayload {
  ProblemId problem_id = 0;
};

struct ProblemDataHeaderPayload {
  ProblemId problem_id = 0;
  std::string algorithm_name;
  /// The blob itself follows on the bulk channel after this frame.
  std::uint64_t data_bytes = 0;
};

struct ResultAckPayload {
  bool accepted = false;
};

net::Message encode_hello(const HelloPayload& p, std::uint64_t correlation);
HelloPayload decode_hello(const net::Message& m);

net::Message encode_hello_ack(const HelloAckPayload& p, std::uint64_t correlation);
HelloAckPayload decode_hello_ack(const net::Message& m);

net::Message encode_request_work(ClientId client, std::uint64_t correlation);
ClientId decode_request_work(const net::Message& m);

net::Message encode_work_assignment(const WorkUnit& unit, std::uint64_t correlation);
WorkUnit decode_work_assignment(const net::Message& m);

net::Message encode_no_work(const NoWorkPayload& p, std::uint64_t correlation);
NoWorkPayload decode_no_work(const net::Message& m);

net::Message encode_submit_result(ClientId client, const ResultUnit& result,
                                  std::uint64_t correlation);
std::pair<ClientId, ResultUnit> decode_submit_result(const net::Message& m);

net::Message encode_result_ack(const ResultAckPayload& p, std::uint64_t correlation);
ResultAckPayload decode_result_ack(const net::Message& m);

net::Message encode_fetch_problem_data(const FetchProblemDataPayload& p,
                                       std::uint64_t correlation);
FetchProblemDataPayload decode_fetch_problem_data(const net::Message& m);

net::Message encode_problem_data_header(const ProblemDataHeaderPayload& p,
                                        std::uint64_t correlation);
ProblemDataHeaderPayload decode_problem_data_header(const net::Message& m);

net::Message encode_heartbeat(ClientId client, std::uint64_t correlation);
ClientId decode_heartbeat(const net::Message& m);

net::Message encode_goodbye(ClientId client, std::uint64_t correlation);
ClientId decode_goodbye(const net::Message& m);

}  // namespace hdcs::dist
