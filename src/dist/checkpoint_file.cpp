#include "dist/checkpoint_file.hpp"

#include "net/bulk.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/byte_buffer.hpp"
#include "util/error.hpp"
#include "util/vfs.hpp"

namespace hdcs::dist {

namespace {
constexpr std::uint32_t kCheckpointMagic = 0x484b4350;  // "HKCP"
// v2: SchedulerCore layout gained replication/vote state per in-flight
// unit and the donor reputation ledger.
// v3: content-addressed bulk-data plane — per-unit blob references plus a
// global digest -> bytes table (problem-data blobs excluded; they are
// re-interned when the problems are re-submitted before restore()).
// v4: the scheduler epoch (server term, WAL/failover fencing) leads the
// payload; restore enters a new term past it.
constexpr std::uint32_t kCheckpointFileVersion = 4;
}  // namespace

void write_checkpoint_file(const std::string& path,
                           std::span<const std::byte> payload) {
  ByteWriter w(payload.size() + 32);
  w.u32(kCheckpointMagic);
  w.u32(kCheckpointFileVersion);
  w.u64(payload.size());
  w.raw(payload);
  w.u32(net::crc32(payload));

  // tmp + fsync + atomic rename through the vfs, so an injected ENOSPC /
  // EIO / torn rename exercises the same recovery the real faults would:
  // the old checkpoint (if any) stays valid on a clean failure, and a torn
  // rename is caught by the CRC envelope on the next read.
  std::string tmp = path + ".tmp";
  try {
    auto f = vfs::File::create(tmp);
    f.write_all(w.data());
    f.sync();
    f.close();
    vfs::rename_file(tmp, path);
  } catch (...) {
    vfs::remove_file(tmp);
    throw;
  }
  vfs::sync_parent_dir(path);
}

std::optional<std::vector<std::byte>> read_checkpoint_file(
    const std::string& path) {
  auto maybe_raw = vfs::read_file_if_exists(path);
  if (!maybe_raw) return std::nullopt;
  auto& raw = *maybe_raw;

  ByteReader r{std::span<const std::byte>(raw)};
  if (raw.size() < 20 || r.u32() != kCheckpointMagic) {
    throw ProtocolError("checkpoint file " + path + ": bad magic");
  }
  if (std::uint32_t v = r.u32(); v != kCheckpointFileVersion) {
    throw ProtocolError("checkpoint file " + path + ": unsupported version " +
                        std::to_string(v));
  }
  std::uint64_t len = r.u64();
  if (len > r.remaining()) {
    throw ProtocolError("checkpoint file " + path + ": truncated");
  }
  auto payload_view = r.raw(static_cast<std::size_t>(len));
  std::vector<std::byte> payload(payload_view.begin(), payload_view.end());
  std::uint32_t expected = r.u32();
  r.expect_end();
  if (net::crc32(payload) != expected) {
    throw ProtocolError("checkpoint file " + path + ": CRC mismatch");
  }
  return payload;
}

void record_checkpoint_saved(obs::Tracer* tracer, double t, std::size_t bytes,
                             std::size_t problems,
                             std::size_t units_in_flight) {
  auto& reg = obs::Registry::global();
  reg.counter("checkpoint.saves").inc();
  reg.gauge("checkpoint.bytes").set(static_cast<double>(bytes));
  if (tracer) {
    tracer->event(t, "checkpoint_saved")
        .u64("bytes", bytes)
        .u64("problems", problems)
        .u64("units_in_flight", units_in_flight);
  }
}

}  // namespace hdcs::dist
