#include "dist/checkpoint_file.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "net/bulk.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/byte_buffer.hpp"
#include "util/error.hpp"

namespace hdcs::dist {

namespace {
constexpr std::uint32_t kCheckpointMagic = 0x484b4350;  // "HKCP"
// v2: SchedulerCore layout gained replication/vote state per in-flight
// unit and the donor reputation ledger.
// v3: content-addressed bulk-data plane — per-unit blob references plus a
// global digest -> bytes table (problem-data blobs excluded; they are
// re-interned when the problems are re-submitted before restore()).
// v4: the scheduler epoch (server term, WAL/failover fencing) leads the
// payload; restore enters a new term past it.
constexpr std::uint32_t kCheckpointFileVersion = 4;

[[noreturn]] void throw_errno(const std::string& what) {
  throw IoError(what + ": " + std::strerror(errno));
}

void write_fully(int fd, std::span<const std::byte> data,
                 const std::string& path) {
  std::size_t off = 0;
  while (off < data.size()) {
    ssize_t n = ::write(fd, data.data() + off, data.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_errno("write " + path);
    }
    off += static_cast<std::size_t>(n);
  }
}

void fsync_parent_dir(const std::string& path) {
  // Make the rename itself durable. Best-effort: some filesystems refuse
  // O_RDONLY on directories, and the data is already safe in the file.
  auto slash = path.find_last_of('/');
  std::string dir = slash == std::string::npos ? "." : path.substr(0, slash);
  if (dir.empty()) dir = "/";
  int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (dfd >= 0) {
    ::fsync(dfd);
    ::close(dfd);
  }
}
}  // namespace

void write_checkpoint_file(const std::string& path,
                           std::span<const std::byte> payload) {
  ByteWriter w(payload.size() + 32);
  w.u32(kCheckpointMagic);
  w.u32(kCheckpointFileVersion);
  w.u64(payload.size());
  w.raw(payload);
  w.u32(net::crc32(payload));

  std::string tmp = path + ".tmp";
  int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) throw_errno("open " + tmp);
  try {
    write_fully(fd, w.data(), tmp);
    if (::fsync(fd) != 0) throw_errno("fsync " + tmp);
  } catch (...) {
    ::close(fd);
    ::unlink(tmp.c_str());
    throw;
  }
  ::close(fd);
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    int saved = errno;
    ::unlink(tmp.c_str());
    errno = saved;
    throw_errno("rename " + tmp + " -> " + path);
  }
  fsync_parent_dir(path);
}

std::optional<std::vector<std::byte>> read_checkpoint_file(
    const std::string& path) {
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    if (errno == ENOENT) return std::nullopt;
    throw_errno("open " + path);
  }
  std::vector<std::byte> raw;
  std::byte buf[1 << 16];
  for (;;) {
    ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) continue;
      int saved = errno;
      ::close(fd);
      errno = saved;
      throw_errno("read " + path);
    }
    if (n == 0) break;
    raw.insert(raw.end(), buf, buf + n);
  }
  ::close(fd);

  ByteReader r{std::span<const std::byte>(raw)};
  if (raw.size() < 20 || r.u32() != kCheckpointMagic) {
    throw ProtocolError("checkpoint file " + path + ": bad magic");
  }
  if (std::uint32_t v = r.u32(); v != kCheckpointFileVersion) {
    throw ProtocolError("checkpoint file " + path + ": unsupported version " +
                        std::to_string(v));
  }
  std::uint64_t len = r.u64();
  if (len > r.remaining()) {
    throw ProtocolError("checkpoint file " + path + ": truncated");
  }
  auto payload_view = r.raw(static_cast<std::size_t>(len));
  std::vector<std::byte> payload(payload_view.begin(), payload_view.end());
  std::uint32_t expected = r.u32();
  r.expect_end();
  if (net::crc32(payload) != expected) {
    throw ProtocolError("checkpoint file " + path + ": CRC mismatch");
  }
  return payload;
}

void record_checkpoint_saved(obs::Tracer* tracer, double t, std::size_t bytes,
                             std::size_t problems,
                             std::size_t units_in_flight) {
  auto& reg = obs::Registry::global();
  reg.counter("checkpoint.saves").inc();
  reg.gauge("checkpoint.bytes").set(static_cast<double>(bytes));
  if (tracer) {
    tracer->event(t, "checkpoint_saved")
        .u64("bytes", bytes)
        .u64("problems", problems)
        .u64("units_in_flight", units_in_flight);
  }
}

}  // namespace hdcs::dist
