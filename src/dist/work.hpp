#pragma once
// Work and result units — the currency of the distributed system.
//
// A DataManager partitions a Problem into WorkUnits; an Algorithm turns a
// WorkUnit into a ResultUnit; the DataManager merges ResultUnits back into
// the final answer (paper §2.1). Payloads are opaque application bytes.

#include <cstdint>
#include <optional>
#include <span>
#include <utility>
#include <vector>

#include "net/blob_cache.hpp"
#include "obs/span_profile.hpp"

namespace hdcs::dist {

using ProblemId = std::uint64_t;
using UnitId = std::uint64_t;
using ClientId = std::uint64_t;

/// An immutable bulk input addressed by content digest (protocol v4). A
/// DataManager attaches blobs to units it emits, with bytes populated; the
/// scheduler interns the bytes into its content-addressed store and ships
/// units carrying only {digest, size} references — donors resolve them
/// through their local BlobCache, fetching misses with FetchBlobs.
struct WorkBlob {
  std::uint64_t digest = 0;  // net::blob_digest over the content
  std::uint64_t size = 0;    // raw (uncompressed) byte count
  /// Content. Empty in a reference-only unit (on the wire, or stored in
  /// the scheduler once interned).
  std::vector<std::byte> bytes;
};

/// Wrap bytes as a blob with its digest/size filled in.
inline WorkBlob make_work_blob(std::vector<std::byte> bytes) {
  WorkBlob blob;
  blob.digest = net::blob_digest(bytes);
  blob.size = bytes.size();
  blob.bytes = std::move(bytes);
  return blob;
}

struct WorkUnit {
  ProblemId problem_id = 0;  // assigned by the scheduler
  UnitId unit_id = 0;        // assigned by the scheduler, unique per problem run
  std::uint32_t stage = 0;   // stage index for staged computations (DPRml)
  /// Estimated abstract cost ("ops") of this unit. Filled by the
  /// DataManager; used for granularity adaptation and by the simulator's
  /// machine cost model. Must be > 0.
  double cost_ops = 0;
  std::vector<std::byte> payload;
  /// Content-addressed bulk inputs shared across units (database chunks,
  /// stage trees). Algorithms see them with bytes materialized; legacy
  /// (v3) donors instead receive them flattened onto `payload`.
  std::vector<WorkBlob> blobs;
  /// Server term that issued this lease (protocol v6). A standby that
  /// promotes itself bumps the epoch, so results computed against a
  /// deposed primary's leases are fenced and rejected — the same hazard
  /// SchedulerCore::kRestoreIdGap guards against, closed without an id
  /// gap. 0 = issued by a pre-v6 server (no fencing).
  std::uint64_t epoch = 0;
};

struct ResultUnit {
  ProblemId problem_id = 0;
  UnitId unit_id = 0;
  std::uint32_t stage = 0;
  std::vector<std::byte> payload;
  /// CRC-32 digest of `payload`, computed by the donor that produced it
  /// and re-verified server-side (protocol v3). 0 = not supplied; the
  /// scheduler then computes the digest itself for replication voting.
  std::uint32_t payload_crc = 0;
  /// Donor-measured phase durations (protocol v5 trailer). Absent from
  /// v3/v4 donors; the scheduler merges it with its lease timeline into
  /// the `unit_profile` trace event when present.
  std::optional<obs::UnitProfile> profile;
  /// Epoch echoed back from the WorkUnit this result answers (protocol
  /// v6). The scheduler rejects results whose epoch predates its own —
  /// fencing a deposed primary's late submissions. 0 = legacy donor.
  std::uint64_t epoch = 0;
};

}  // namespace hdcs::dist
