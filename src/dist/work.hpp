#pragma once
// Work and result units — the currency of the distributed system.
//
// A DataManager partitions a Problem into WorkUnits; an Algorithm turns a
// WorkUnit into a ResultUnit; the DataManager merges ResultUnits back into
// the final answer (paper §2.1). Payloads are opaque application bytes.

#include <cstdint>
#include <vector>

namespace hdcs::dist {

using ProblemId = std::uint64_t;
using UnitId = std::uint64_t;
using ClientId = std::uint64_t;

struct WorkUnit {
  ProblemId problem_id = 0;  // assigned by the scheduler
  UnitId unit_id = 0;        // assigned by the scheduler, unique per problem run
  std::uint32_t stage = 0;   // stage index for staged computations (DPRml)
  /// Estimated abstract cost ("ops") of this unit. Filled by the
  /// DataManager; used for granularity adaptation and by the simulator's
  /// machine cost model. Must be > 0.
  double cost_ops = 0;
  std::vector<std::byte> payload;
};

struct ResultUnit {
  ProblemId problem_id = 0;
  UnitId unit_id = 0;
  std::uint32_t stage = 0;
  std::vector<std::byte> payload;
  /// CRC-32 digest of `payload`, computed by the donor that produced it
  /// and re-verified server-side (protocol v3). 0 = not supplied; the
  /// scheduler then computes the digest itself for replication voting.
  std::uint32_t payload_crc = 0;
};

}  // namespace hdcs::dist
