#pragma once
// The client-side half of a Problem.
//
// "The Algorithm class (in the client) specifies the actual computation"
// (paper §2.1). One Algorithm instance is created per (client, problem);
// initialize() receives the problem's bulk data once, then process() is
// called for each assigned unit.

#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "dist/work.hpp"

namespace hdcs::dist {

class Algorithm {
 public:
  virtual ~Algorithm() = default;

  /// Receive the problem's bulk input data (shipped once per client).
  virtual void initialize(std::span<const std::byte> problem_data) = 0;

  /// Compute one unit; the returned bytes become the ResultUnit payload.
  virtual std::vector<std::byte> process(const WorkUnit& unit) = 0;

  /// Hint that up to `threads` worker threads may be used *inside* a single
  /// process() call (a multi-core donor). Implementations must keep the
  /// returned payload byte-identical to the single-threaded result; the
  /// default ignores the hint. process() itself is never called
  /// concurrently on one instance.
  virtual void set_parallelism(std::size_t threads) { (void)threads; }
};

using AlgorithmFactory = std::function<std::unique_ptr<Algorithm>()>;

}  // namespace hdcs::dist
