#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "obs/jsonl.hpp"
#include "util/error.hpp"

namespace hdcs::obs {

void Gauge::add(double d) {
  // compare_exchange loop: std::atomic<double>::fetch_add is C++20 for
  // floating point only on some standard libraries; stay portable.
  double cur = v_.load(std::memory_order_relaxed);
  while (!v_.compare_exchange_weak(cur, cur + d, std::memory_order_relaxed)) {
  }
}

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)), counts_(bounds_.size() + 1) {
  if (bounds_.empty()) throw InputError("Histogram: empty bounds");
  if (!std::is_sorted(bounds_.begin(), bounds_.end())) {
    throw InputError("Histogram: bounds must be ascending");
  }
}

void Histogram::observe(double v) {
  std::size_t i = 0;
  while (i < bounds_.size() && v > bounds_[i]) ++i;
  counts_[i].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  double cur = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(cur, cur + v, std::memory_order_relaxed)) {
  }
}

Histogram::Snapshot Histogram::snapshot() const {
  Snapshot s;
  s.bounds = bounds_;
  s.counts.reserve(counts_.size());
  for (const auto& c : counts_) s.counts.push_back(c.load(std::memory_order_relaxed));
  s.count = count_.load(std::memory_order_relaxed);
  s.sum = sum_.load(std::memory_order_relaxed);
  return s;
}

void Histogram::reset() {
  for (auto& c : counts_) c.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
}

double Histogram::Snapshot::quantile(double q) const {
  if (count == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  double target = q * static_cast<double>(count);
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    if (counts[i] == 0) continue;
    double lo = (i == 0) ? 0.0 : bounds[i - 1];
    if (i == bounds.size()) return lo;  // overflow bucket: lower edge
    double hi = bounds[i];
    if (static_cast<double>(seen + counts[i]) >= target) {
      double frac = (target - static_cast<double>(seen)) /
                    static_cast<double>(counts[i]);
      return lo + frac * (hi - lo);
    }
    seen += counts[i];
  }
  return bounds.back();
}

std::vector<double> Histogram::latency_bounds() {
  // 1-2-5 decades from 100 microseconds to 100 seconds.
  return {1e-4, 2e-4, 5e-4, 1e-3, 2e-3, 5e-3, 1e-2, 2e-2, 5e-2, 0.1,
          0.2,  0.5,  1.0,  2.0,  5.0,  10.0, 20.0, 50.0, 100.0};
}

std::vector<double> Histogram::size_bounds() {
  std::vector<double> b;
  for (double v = 64; v <= 64.0 * 1024 * 1024; v *= 4) b.push_back(v);
  return b;
}

Registry& Registry::global() {
  static Registry* r = new Registry();  // never destroyed: outlives statics
  return *r;
}

Counter& Registry::counter(const std::string& name) {
  std::lock_guard lock(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& Registry::gauge(const std::string& name) {
  std::lock_guard lock(mu_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& Registry::histogram(const std::string& name, std::vector<double> bounds) {
  std::lock_guard lock(mu_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>(std::move(bounds));
  return *slot;
}

namespace {
std::string format_num(double v) {
  char buf[64];
  if (v == static_cast<double>(static_cast<long long>(v)) && std::abs(v) < 1e15) {
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  } else {
    std::snprintf(buf, sizeof(buf), "%.6g", v);
  }
  return buf;
}
}  // namespace

std::string Registry::render_text() const {
  std::lock_guard lock(mu_);
  std::ostringstream out;
  for (const auto& [name, c] : counters_) {
    out << name << " " << c->value() << "\n";
  }
  for (const auto& [name, g] : gauges_) {
    out << name << " " << format_num(g->value()) << "\n";
  }
  for (const auto& [name, h] : histograms_) {
    auto s = h->snapshot();
    out << name << " count=" << s.count << " mean=" << format_num(s.mean())
        << " p50=" << format_num(s.quantile(0.5))
        << " p90=" << format_num(s.quantile(0.9))
        << " p99=" << format_num(s.quantile(0.99))
        << " p999=" << format_num(s.quantile(0.999)) << "\n";
  }
  return out.str();
}

std::string Registry::render_json() const {
  std::lock_guard lock(mu_);
  std::ostringstream out;
  out << "{\"counters\":{";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    if (!first) out << ",";
    first = false;
    out << "\"" << json_escape(name) << "\":" << c->value();
  }
  out << "},\"gauges\":{";
  first = true;
  for (const auto& [name, g] : gauges_) {
    if (!first) out << ",";
    first = false;
    out << "\"" << json_escape(name) << "\":" << format_num(g->value());
  }
  out << "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms_) {
    if (!first) out << ",";
    first = false;
    auto s = h->snapshot();
    // Quantiles are computed here rather than by each consumer so pollers
    // (hdcs_top, dashboards) don't have to re-derive them from buckets.
    out << "\"" << json_escape(name) << "\":{\"count\":" << s.count
        << ",\"sum\":" << format_num(s.sum) << ",\"quantiles\":{\"p50\":"
        << format_num(s.quantile(0.5)) << ",\"p90\":"
        << format_num(s.quantile(0.9)) << ",\"p99\":"
        << format_num(s.quantile(0.99)) << ",\"p999\":"
        << format_num(s.quantile(0.999)) << "},\"buckets\":[";
    for (std::size_t i = 0; i < s.counts.size(); ++i) {
      if (i) out << ",";
      out << "{\"le\":";
      if (i == s.bounds.size()) {
        out << "\"inf\"";
      } else {
        out << format_num(s.bounds[i]);
      }
      out << ",\"count\":" << s.counts[i] << "}";
    }
    out << "]}";
  }
  out << "}}";
  return out.str();
}

void Registry::reset_values() {
  std::lock_guard lock(mu_);
  for (auto& [_, c] : counters_) c->reset();
  for (auto& [_, g] : gauges_) g->reset();
  for (auto& [_, h] : histograms_) h->reset();
}

}  // namespace hdcs::obs
