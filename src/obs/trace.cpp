#include "obs/trace.hpp"

#include <chrono>
#include <cmath>
#include <cstdio>

#include "util/error.hpp"
#include "util/logging.hpp"

namespace hdcs::obs {

namespace {
/// Format a double compactly but losslessly enough for timestamps/ops.
std::string fmt_num(double v) {
  char buf[64];
  if (std::isfinite(v) && v == static_cast<double>(static_cast<long long>(v)) &&
      std::abs(v) < 1e15) {
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  } else {
    std::snprintf(buf, sizeof(buf), "%.9g", v);
  }
  return buf;
}
}  // namespace

Tracer::~Tracer() { close(); }

void Tracer::open(const std::string& path) {
  std::lock_guard lock(mu_);
  file_.open(path, std::ios::out | std::ios::app);
  if (!file_) throw IoError("Tracer: cannot open " + path);
  collect_ = false;
  callback_ = nullptr;
  enabled_ = true;
}

void Tracer::to_memory() {
  std::lock_guard lock(mu_);
  if (file_.is_open()) file_.close();
  callback_ = nullptr;
  collect_ = true;
  enabled_ = true;
}

void Tracer::set_callback(std::function<void(const std::string&)> cb) {
  std::lock_guard lock(mu_);
  if (file_.is_open()) file_.close();
  collect_ = false;
  callback_ = std::move(cb);
  enabled_ = static_cast<bool>(callback_);
}

void Tracer::close() {
  std::lock_guard lock(mu_);
  if (file_.is_open()) {
    file_.flush();
    file_.close();
  }
  callback_ = nullptr;
  collect_ = false;
  enabled_ = false;
}

std::vector<std::string> Tracer::lines() const {
  std::lock_guard lock(mu_);
  return memory_;
}

void Tracer::write_line(const std::string& line) {
  std::lock_guard lock(mu_);
  if (!enabled_) return;  // sink closed between event() and emission
  if (file_.is_open()) {
    file_ << line << '\n';
    file_.flush();
  } else if (collect_) {
    memory_.push_back(line);
  } else if (callback_) {
    callback_(line);
  }
}

Tracer::Event::Event(Tracer* tracer, double t, std::string_view type)
    : tracer_(tracer) {
  if (!tracer_) return;
  line_.reserve(96);
  line_ += "{\"schema\":";
  line_ += std::to_string(kTraceSchemaVersion);
  line_ += ",\"t\":";
  line_ += fmt_num(t);
  line_ += ",\"ev\":\"";
  line_ += json_escape(type);
  line_ += '"';
}

Tracer::Event::Event(Event&& other) noexcept
    : tracer_(other.tracer_), line_(std::move(other.line_)) {
  other.tracer_ = nullptr;
}

Tracer::Event::~Event() {
  if (!tracer_) return;
  line_ += '}';
  tracer_->write_line(line_);
}

Tracer::Event& Tracer::Event::str(std::string_view key, std::string_view value) {
  if (!tracer_) return *this;
  line_ += ",\"";
  line_ += json_escape(key);
  line_ += "\":\"";
  line_ += json_escape(value);
  line_ += '"';
  return *this;
}

Tracer::Event& Tracer::Event::num(std::string_view key, double value) {
  if (!tracer_) return *this;
  line_ += ",\"";
  line_ += json_escape(key);
  line_ += "\":";
  line_ += fmt_num(value);
  return *this;
}

Tracer::Event& Tracer::Event::u64(std::string_view key, std::uint64_t value) {
  if (!tracer_) return *this;
  line_ += ",\"";
  line_ += json_escape(key);
  line_ += "\":";
  line_ += std::to_string(value);
  return *this;
}

Tracer::Event& Tracer::Event::boolean(std::string_view key, bool value) {
  if (!tracer_) return *this;
  line_ += ",\"";
  line_ += json_escape(key);
  line_ += "\":";
  line_ += value ? "true" : "false";
  return *this;
}

Tracer::Event Tracer::event(double t, std::string_view type) {
  return Event(enabled_ ? this : nullptr, t, type);
}

double TraceRecord::number(const std::string& key) const {
  auto it = fields.find(key);
  if (it == fields.end()) throw ProtocolError("trace record missing field " + key);
  return it->second.as_number();
}

const std::string& TraceRecord::text(const std::string& key) const {
  auto it = fields.find(key);
  if (it == fields.end()) throw ProtocolError("trace record missing field " + key);
  return it->second.as_string();
}

TraceRecord parse_trace_line(std::string_view line) {
  TraceRecord rec;
  rec.fields = parse_flat_json(line);
  auto schema = rec.fields.find("schema");
  auto t = rec.fields.find("t");
  auto ev = rec.fields.find("ev");
  if (schema == rec.fields.end() || t == rec.fields.end() ||
      ev == rec.fields.end()) {
    throw ProtocolError("trace record missing schema/t/ev");
  }
  rec.schema = static_cast<int>(schema->second.as_number());
  rec.t = t->second.as_number();
  rec.ev = ev->second.as_string();
  return rec;
}

void mirror_logs_to_tracer(Tracer* tracer) {
  if (!tracer) {
    set_log_sink(nullptr);
    return;
  }
  auto epoch = std::chrono::steady_clock::now();
  set_log_sink([tracer, epoch](LogLevel level, const std::string& msg) {
    // Keep the human-readable line AND the structured record.
    log_to_stderr(level, msg);
    double t = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                             epoch)
                   .count();
    tracer->event(t, "log").str("level", log_level_name(level)).str("msg", msg);
  });
}

}  // namespace hdcs::obs
