#pragma once
// Structured event trace: schema-versioned JSONL, one event per line.
//
// The point of this file is that the discrete-event simulator and the real
// TCP server emit the *same* schema: SchedulerCore is the single emitter of
// scheduling events, time-stamped with whatever clock drives it (virtual
// seconds in the sim, wall seconds since server start over TCP). A trace
// from either can be diffed event-for-event or summarised by one tool
// (tools/trace_summary).
//
// Event line shape (flat JSON, parseable by obs::parse_flat_json):
//
//   {"schema":2,"t":12.375,"ev":"unit_issued","client":3,"problem":1,...}
//
// Event types and their fields are listed in docs/OBSERVABILITY.md:
//   unit_issued unit_completed unit_reissued unit_hedged result_duplicate
//   unit_profile client_joined client_left stage_barrier checkpoint log
//
// Schema history: v2 added the unit_profile event (donor-measured span
// profile merged with the scheduler's lease timeline). v1 lines are still
// parsed; only the emitted version moved.
//
// A Tracer with no sink is "disabled": event() returns a dead builder and
// the cost at every call site is one pointer-null check. Sinks:
//   open(path)   — append JSONL to a file (flushed per line)
//   to_memory()  — collect lines in-process (tests, equivalence checks)
//   set_callback — arbitrary consumer
// Writing is mutex-serialised; builders format off-lock.

#include <cstdint>
#include <fstream>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "obs/jsonl.hpp"

namespace hdcs::obs {

inline constexpr int kTraceSchemaVersion = 2;

class Tracer {
 public:
  Tracer() = default;
  ~Tracer();

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Append to a JSONL file; throws IoError if it cannot be opened.
  void open(const std::string& path);
  /// Collect lines in memory; read them back with lines().
  void to_memory();
  /// Send each finished line to a callback (invoked under the write lock).
  void set_callback(std::function<void(const std::string&)> cb);
  /// Drop the sink; subsequent events are no-ops. Flushes the file sink.
  void close();

  [[nodiscard]] bool enabled() const { return enabled_; }

  /// Lines captured by to_memory() (copy; thread-safe).
  [[nodiscard]] std::vector<std::string> lines() const;

  /// Fluent single-line event builder. Keys are appended in call order;
  /// the line is emitted when the builder is destroyed (end of the full
  /// expression at the call site). On a disabled tracer every call is a
  /// no-op.
  class Event {
   public:
    Event(Event&& other) noexcept;
    Event(const Event&) = delete;
    Event& operator=(const Event&) = delete;
    Event& operator=(Event&&) = delete;
    ~Event();

    Event& str(std::string_view key, std::string_view value);
    Event& num(std::string_view key, double value);
    Event& u64(std::string_view key, std::uint64_t value);
    Event& boolean(std::string_view key, bool value);

   private:
    friend class Tracer;
    Event(Tracer* tracer, double t, std::string_view type);
    Tracer* tracer_;  // nullptr = disabled, all appends skipped
    std::string line_;
  };

  /// Start an event at time `t` (caller's clock: virtual or wall seconds).
  [[nodiscard]] Event event(double t, std::string_view type);

 private:
  void write_line(const std::string& line);

  bool enabled_ = false;
  mutable std::mutex mu_;
  std::ofstream file_;
  bool collect_ = false;
  std::vector<std::string> memory_;
  std::function<void(const std::string&)> callback_;
};

/// Parsed view of one trace line; thin sugar over parse_flat_json.
struct TraceRecord {
  int schema = 0;
  double t = 0;
  std::string ev;
  std::map<std::string, JsonValue> fields;  // includes schema/t/ev

  [[nodiscard]] bool has(const std::string& key) const {
    return fields.count(key) != 0;
  }
  [[nodiscard]] double number(const std::string& key) const;
  [[nodiscard]] const std::string& text(const std::string& key) const;
};

/// Parse one JSONL trace line; throws ProtocolError on malformed input or
/// missing schema/t/ev fields.
TraceRecord parse_trace_line(std::string_view line);

/// Mirror every HDCS_LOG emission >= the global level into `tracer` as
/// {"ev":"log","level":...,"msg":...} events (timestamped with wall seconds
/// since the bridge was installed) while still printing to the default
/// stderr sink. Passing nullptr restores plain stderr logging. The tracer
/// must outlive the bridge.
void mirror_logs_to_tracer(Tracer* tracer);

}  // namespace hdcs::obs
