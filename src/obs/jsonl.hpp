#pragma once
// Minimal JSON helpers for the observability layer.
//
// The trace and metrics formats are deliberately flat (one level of nesting
// for the metrics export), so this is not a general JSON library: it offers
// string escaping for writers plus a parser for the *flat* objects the
// Tracer emits — exactly what trace_summary and the round-trip tests need.
// Anything fancier (arrays of objects, deep nesting) belongs to a real
// parser and is out of scope here.

#include <map>
#include <string>
#include <string_view>

namespace hdcs::obs {

/// Escape a string for inclusion inside JSON double quotes (no quotes added).
std::string json_escape(std::string_view s);

/// One parsed scalar from a flat JSON object.
struct JsonValue {
  enum class Kind { kString, kNumber, kBool, kNull } kind = Kind::kNull;
  std::string str;   // valid when kind == kString
  double num = 0;    // valid when kind == kNumber
  bool b = false;    // valid when kind == kBool

  [[nodiscard]] double as_number() const;
  [[nodiscard]] const std::string& as_string() const;
};

/// Parse a single-line flat JSON object: string/number/bool/null values
/// only, no nested objects or arrays. Throws hdcs::ProtocolError on
/// malformed input. Key order is not preserved (std::map).
std::map<std::string, JsonValue> parse_flat_json(std::string_view line);

}  // namespace hdcs::obs
