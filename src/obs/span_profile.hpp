#pragma once
// Per-unit distributed span profiles.
//
// A donor times each phase of a work unit's life — queue wait, blob fetch,
// decompression, compute, result encoding — and ships the durations back to
// the server piggybacked on the result (protocol v5 trailer). Durations
// only: donor and server clocks are never compared, so no cross-machine
// clock sync is needed. The scheduler merges the donor's spans with its own
// lease timeline (issue -> submit on the server clock) into one
// `unit_profile` trace event; whatever part of the lease the donor did not
// account for is attributed to the submit leg (result transfer + server
// handling). See docs/OBSERVABILITY.md for the event schema.

#include <cstdint>

#include "util/stopwatch.hpp"

namespace hdcs::obs {

/// Donor-side phase durations for one work unit. All spans are seconds on
/// the donor's monotonic clock. A default-constructed profile (all zeros)
/// means "not measured" — v3/v4 donors never populate one.
struct UnitProfile {
  double queue_wait_s = 0;  // RequestWork sent -> assignment decoded
  double blob_fetch_s = 0;  // problem data + blob resolution (network + cache)
  double decompress_s = 0;  // LZ decompression inside blob receives
  double compute_s = 0;     // Algorithm::process (incl. throttle padding)
  double encode_s = 0;      // result digest + payload finalization
  std::uint32_t threads = 1;       // exec threads inside the unit
  std::uint64_t saturations = 0;   // int16 lanes re-run through int64

  /// Sum of the measured donor-side spans.
  [[nodiscard]] double total_s() const {
    return queue_wait_s + blob_fetch_s + decompress_s + compute_s + encode_s;
  }
};

/// Accumulating scope timer: adds elapsed wall seconds to a target double
/// when stopped (or destroyed). One phase is often split across several
/// code regions — e.g. blob_fetch across context_for and ensure_blobs — so
/// the timer *adds* rather than assigns, and one target can be fed by many
/// timers.
class SpanTimer {
 public:
  explicit SpanTimer(double& target) : target_(&target) {}
  SpanTimer(const SpanTimer&) = delete;
  SpanTimer& operator=(const SpanTimer&) = delete;
  ~SpanTimer() { stop(); }

  /// Add the elapsed span to the target now; further calls are no-ops.
  void stop() {
    if (target_ == nullptr) return;
    *target_ += watch_.seconds();
    target_ = nullptr;
  }

  /// Abandon the span without recording it.
  void cancel() { target_ = nullptr; }

 private:
  double* target_;
  Stopwatch watch_;
};

}  // namespace hdcs::obs
