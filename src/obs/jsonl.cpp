#include "obs/jsonl.hpp"

#include <cctype>
#include <charconv>
#include <cstdio>

#include "util/error.hpp"

namespace hdcs::obs {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

double JsonValue::as_number() const {
  if (kind != Kind::kNumber) throw ProtocolError("JSON value is not a number");
  return num;
}

const std::string& JsonValue::as_string() const {
  if (kind != Kind::kString) throw ProtocolError("JSON value is not a string");
  return str;
}

namespace {

class FlatParser {
 public:
  explicit FlatParser(std::string_view s) : s_(s) {}

  std::map<std::string, JsonValue> parse() {
    std::map<std::string, JsonValue> out;
    skip_ws();
    expect('{');
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return out;
    }
    for (;;) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      skip_ws();
      out[key] = parse_value();
      skip_ws();
      char c = next();
      if (c == '}') break;
      if (c != ',') fail("expected ',' or '}'");
    }
    skip_ws();
    if (pos_ != s_.size()) fail("trailing characters after object");
    return out;
  }

 private:
  [[noreturn]] void fail(const std::string& why) const {
    throw ProtocolError("flat JSON parse error at offset " +
                        std::to_string(pos_) + ": " + why);
  }
  char peek() const {
    if (pos_ >= s_.size()) fail("unexpected end of input");
    return s_[pos_];
  }
  char next() {
    char c = peek();
    ++pos_;
    return c;
  }
  void expect(char c) {
    if (next() != c) fail(std::string("expected '") + c + "'");
  }
  void skip_ws() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_]))) {
      ++pos_;
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      char c = next();
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      char esc = next();
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'u': {
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            char h = next();
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else fail("bad \\u escape");
          }
          // The tracer only emits \u00xx control escapes; anything above
          // Latin-1 would need real UTF-8 encoding, which we don't produce.
          if (code > 0xff) fail("\\u escape above 0xff unsupported");
          out += static_cast<char>(code);
          break;
        }
        default: fail("bad escape character");
      }
    }
  }

  JsonValue parse_value() {
    JsonValue v;
    char c = peek();
    if (c == '"') {
      v.kind = JsonValue::Kind::kString;
      v.str = parse_string();
      return v;
    }
    if (c == 't' || c == 'f') {
      std::string_view want = (c == 't') ? "true" : "false";
      if (s_.substr(pos_, want.size()) != want) fail("bad literal");
      pos_ += want.size();
      v.kind = JsonValue::Kind::kBool;
      v.b = (c == 't');
      return v;
    }
    if (c == 'n') {
      if (s_.substr(pos_, 4) != "null") fail("bad literal");
      pos_ += 4;
      v.kind = JsonValue::Kind::kNull;
      return v;
    }
    if (c == '{' || c == '[') fail("nested objects/arrays unsupported");
    std::size_t end = pos_;
    while (end < s_.size() && s_[end] != ',' && s_[end] != '}' &&
           !std::isspace(static_cast<unsigned char>(s_[end]))) {
      ++end;
    }
    const char* first = s_.data() + pos_;
    const char* last = s_.data() + end;
    double num = 0;
    auto [ptr, ec] = std::from_chars(first, last, num);
    if (ec != std::errc() || ptr != last) fail("bad number");
    pos_ = end;
    v.kind = JsonValue::Kind::kNumber;
    v.num = num;
    return v;
  }

  std::string_view s_;
  std::size_t pos_ = 0;
};

}  // namespace

std::map<std::string, JsonValue> parse_flat_json(std::string_view line) {
  return FlatParser(line).parse();
}

}  // namespace hdcs::obs
