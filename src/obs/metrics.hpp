#pragma once
// Process-wide metrics: counters, gauges and fixed-bucket histograms.
//
// Design rules, in priority order:
//   1. Hot-path updates are a single relaxed atomic op — no locks, no
//      allocation, no formatting. Callers look an instrument up once
//      (Registry::counter() takes a mutex) and keep the reference; the
//      reference stays valid for the registry's lifetime, including across
//      reset(), which zeroes values but never destroys instruments.
//   2. Export is human-first: render_text() for eyeballs, render_json() for
//      tools and the MSG_STATS wire snapshot.
//   3. One global registry (Registry::global()) shared by the net layer and
//      anything else without a better home; subsystems that need isolated
//      numbers (tests, side-by-side sims) construct their own Registry.
//
// Naming convention: dotted lowercase paths, unit suffix where ambiguous —
// "net.bytes_sent", "server.handle_s.RequestWork" (seconds),
// "scheduler.units_issued". See docs/OBSERVABILITY.md for the full list.

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace hdcs::obs {

/// Monotonic event count. Relaxed ordering: totals are exact once writer
/// threads are quiesced; mid-run reads may lag by in-flight increments.
class Counter {
 public:
  void inc(std::uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  [[nodiscard]] std::uint64_t value() const {
    return v_.load(std::memory_order_relaxed);
  }
  void reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Last-write-wins instantaneous value (connected clients, queue depth).
class Gauge {
 public:
  void set(double v) { v_.store(v, std::memory_order_relaxed); }
  void add(double d);
  [[nodiscard]] double value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0};
};

/// Fixed-boundary histogram for latencies and sizes. Boundaries are upper
/// bucket edges; one implicit overflow bucket catches everything above the
/// last edge. observe() is two relaxed atomic adds plus a branchless-ish
/// linear scan over <= ~24 edges — cheap enough for per-request use.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void observe(double v);

  struct Snapshot {
    std::vector<double> bounds;        // upper edges, ascending
    std::vector<std::uint64_t> counts; // bounds.size() + 1 (overflow last)
    std::uint64_t count = 0;
    double sum = 0;
    /// Linear-interpolated quantile estimate (q in [0,1]); the overflow
    /// bucket reports its lower edge. 0 when empty.
    [[nodiscard]] double quantile(double q) const;
    [[nodiscard]] double mean() const { return count ? sum / count : 0; }
  };
  [[nodiscard]] Snapshot snapshot() const;
  void reset();

  /// Log-spaced latency edges, 100us .. ~100s. The default for "_s" metrics.
  static std::vector<double> latency_bounds();
  /// Log-spaced size edges, 64 B .. 64 MiB. The default for byte metrics.
  static std::vector<double> size_bounds();

 private:
  std::vector<double> bounds_;
  std::vector<std::atomic<std::uint64_t>> counts_;  // bounds_.size() + 1
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0};
};

class Registry {
 public:
  /// The process-wide registry (net-layer counters live here).
  static Registry& global();

  /// Find-or-create. The returned reference is valid for the registry's
  /// lifetime. A histogram name reused with different bounds keeps the
  /// original bounds (first registration wins).
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name, std::vector<double> bounds =
                                                    Histogram::latency_bounds());

  /// Aligned "name value" lines, histograms as count/mean/p50/p90/p99/p999.
  [[nodiscard]] std::string render_text() const;
  /// {"counters":{...},"gauges":{...},
  ///  "histograms":{name:{count,sum,quantiles:{p50,p90,p99,p999},buckets}}}
  [[nodiscard]] std::string render_json() const;

  /// Zero every instrument without invalidating references (tests).
  void reset_values();

 private:
  mutable std::mutex mu_;  // guards the maps, never held during updates
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace hdcs::obs
