// Scalar and portable tiers of the partials-combine kernel. Both share the
// exact expression (and association) documented in partials_kernels.hpp;
// the only difference is that the scalar tier forbids auto-vectorization,
// so HDCS_SIMD=scalar really does mean "no vector units involved".

#include "phylo/partials_kernels.hpp"

// GCC honors per-function optimize attributes; other compilers just get
// the same (correct) code, possibly auto-vectorized.
#if defined(__GNUC__) && !defined(__clang__)
#define HDCS_NO_AUTOVEC \
  __attribute__((optimize("no-tree-vectorize", "no-tree-slp-vectorize")))
#else
#define HDCS_NO_AUTOVEC
#endif

namespace hdcs::phylo {

namespace {

HDCS_NO_AUTOVEC
void combine_scalar(const double* pm, const double* child, double* node,
                    std::size_t count, bool assign) {
  for (std::size_t k = 0; k < count; ++k) {
    const double* c = child + k * 4;
    double* nd = node + k * 4;
    for (int i = 0; i < 4; ++i) {
      double sum = pm[i * 4 + 0] * c[0] + pm[i * 4 + 1] * c[1] +
                   pm[i * 4 + 2] * c[2] + pm[i * 4 + 3] * c[3];
      if (assign) {
        nd[i] = sum;
      } else {
        nd[i] *= sum;
      }
    }
  }
}

template <bool kAssign>
void combine_body(const double* pm, const double* child, double* node,
                  std::size_t count) {
  for (std::size_t k = 0; k < count; ++k) {
    const double* c = child + k * 4;
    double* nd = node + k * 4;
    for (int i = 0; i < 4; ++i) {
      double sum = pm[i * 4 + 0] * c[0] + pm[i * 4 + 1] * c[1] +
                   pm[i * 4 + 2] * c[2] + pm[i * 4 + 3] * c[3];
      if constexpr (kAssign) {
        nd[i] = sum;
      } else {
        nd[i] *= sum;
      }
    }
  }
}

void combine_portable(const double* pm, const double* child, double* node,
                      std::size_t count, bool assign) {
  if (assign) {
    combine_body<true>(pm, child, node, count);
  } else {
    combine_body<false>(pm, child, node, count);
  }
}

}  // namespace

PartialsCombineFn partials_combine_scalar() { return &combine_scalar; }
PartialsCombineFn partials_combine_portable() { return &combine_portable; }

PartialsCombineFn partials_combine_for(SimdTier tier) {
  switch (tier) {
    case SimdTier::kScalar: return partials_combine_scalar();
    case SimdTier::kSse2: return partials_combine_portable();
    case SimdTier::kAvx2: return partials_combine_avx2();
  }
  return partials_combine_portable();
}

}  // namespace hdcs::phylo
