#include "phylo/distance.hpp"

#include <cmath>

#include "util/error.hpp"

namespace hdcs::phylo {

std::vector<std::vector<double>> jc_distance_matrix(const Alignment& alignment,
                                                    double max_distance) {
  alignment.validate();
  const std::size_t n = alignment.taxon_count();
  const std::size_t sites = alignment.site_count();
  std::vector<std::vector<double>> d(n, std::vector<double>(n, 0.0));

  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      std::size_t comparable = 0, mismatches = 0;
      for (std::size_t s = 0; s < sites; ++s) {
        char a = alignment.rows[i][s];
        char b = alignment.rows[j][s];
        if (a == '-' || a == 'N' || b == '-' || b == 'N') continue;
        ++comparable;
        if (a != b) ++mismatches;
      }
      double dist;
      if (comparable == 0) {
        dist = max_distance;
      } else {
        double p = static_cast<double>(mismatches) / static_cast<double>(comparable);
        dist = (p >= 0.749999)
                   ? max_distance
                   : -0.75 * std::log(1.0 - 4.0 * p / 3.0);
      }
      d[i][j] = d[j][i] = std::min(dist, max_distance);
    }
  }
  return d;
}

Tree neighbor_joining(const std::vector<std::vector<double>>& distances,
                      const std::vector<std::string>& names) {
  const std::size_t n = names.size();
  if (distances.size() != n) throw InputError("NJ: matrix/name size mismatch");
  if (n < 3) throw InputError("NJ: need at least 3 taxa");
  for (const auto& row : distances) {
    if (row.size() != n) throw InputError("NJ: matrix not square");
  }

  // Run classic NJ on a lightweight adjacency description first, then emit
  // the Tree arena in one pass at the end (Tree nodes need a parent at
  // creation, which merge order doesn't provide).
  struct ProtoNode {
    std::string name;   // leaves only
    int left = -1, right = -1;
    double left_bl = 0, right_bl = 0;
  };
  std::vector<ProtoNode> proto;
  std::vector<int> cluster_proto;  // active cluster -> proto index
  for (std::size_t i = 0; i < n; ++i) {
    proto.push_back({names[i], -1, -1, 0, 0});
    cluster_proto.push_back(static_cast<int>(i));
  }

  std::vector<std::size_t> act(n);
  for (std::size_t i = 0; i < n; ++i) act[i] = i;
  std::vector<std::vector<double>> m = distances;

  while (act.size() > 3) {
    const std::size_t r = act.size();
    // Row sums over active set.
    std::vector<double> rowsum(r, 0.0);
    for (std::size_t i = 0; i < r; ++i) {
      for (std::size_t j = 0; j < r; ++j) rowsum[i] += m[act[i]][act[j]];
    }
    // Pick the pair minimizing the Q criterion.
    double best_q = 1e300;
    std::size_t bi = 0, bj = 1;
    for (std::size_t i = 0; i < r; ++i) {
      for (std::size_t j = i + 1; j < r; ++j) {
        double q = (static_cast<double>(r) - 2.0) * m[act[i]][act[j]] -
                   rowsum[i] - rowsum[j];
        if (q < best_q) {
          best_q = q;
          bi = i;
          bj = j;
        }
      }
    }
    std::size_t a = act[bi], b = act[bj];
    double dab = m[a][b];
    double bl_a = 0.5 * dab + (rowsum[bi] - rowsum[bj]) /
                                  (2.0 * (static_cast<double>(r) - 2.0));
    double bl_b = dab - bl_a;
    bl_a = std::max(bl_a, 0.0);
    bl_b = std::max(bl_b, 0.0);

    ProtoNode merged;
    merged.left = cluster_proto[a];
    merged.right = cluster_proto[b];
    merged.left_bl = bl_a;
    merged.right_bl = bl_b;
    proto.push_back(merged);
    int merged_idx = static_cast<int>(proto.size()) - 1;

    // New distances: d(u, k) = (d(a,k) + d(b,k) - d(a,b)) / 2, stored in
    // slot `a`; slot `b` retires.
    for (std::size_t k : act) {
      if (k == a || k == b) continue;
      double duk = 0.5 * (m[a][k] + m[b][k] - dab);
      m[a][k] = m[k][a] = std::max(duk, 0.0);
    }
    cluster_proto[a] = merged_idx;
    act.erase(act.begin() + static_cast<std::ptrdiff_t>(bj));
  }

  // Join the last three clusters at a trifurcating root with the standard
  // three-point formulas.
  std::size_t x = act[0], y = act[1], z = act[2];
  double bx = 0.5 * (m[x][y] + m[x][z] - m[y][z]);
  double by = 0.5 * (m[x][y] + m[y][z] - m[x][z]);
  double bz = 0.5 * (m[x][z] + m[y][z] - m[x][y]);

  // Emit the proto forest into a fresh Tree.
  Tree out;
  int root = out.add_node(-1, 0);
  struct Emit {
    int proto_idx;
    int parent;
    double bl;
  };
  std::vector<Emit> stack = {{cluster_proto[x], root, std::max(bx, 0.0)},
                             {cluster_proto[y], root, std::max(by, 0.0)},
                             {cluster_proto[z], root, std::max(bz, 0.0)}};
  while (!stack.empty()) {
    Emit e = stack.back();
    stack.pop_back();
    const ProtoNode& pn = proto[static_cast<std::size_t>(e.proto_idx)];
    int node = out.add_node(e.parent, e.bl, pn.name);
    if (pn.left >= 0) {
      stack.push_back({pn.left, node, pn.left_bl});
      stack.push_back({pn.right, node, pn.right_bl});
    }
  }
  return out;
}

Tree nj_tree(const Alignment& alignment) {
  return neighbor_joining(jc_distance_matrix(alignment), alignment.names);
}

}  // namespace hdcs::phylo
