#pragma once
// Maximum-likelihood evaluation on trees: Felsenstein's pruning algorithm
// with per-pattern scaling, among-site rate categories, and Brent
// branch-length optimisation. This is the surface DPRml uses PAL for
// (paper §3.2: "uses the popular Phylogenetic Analysis Library (PAL) v1.4
// for all its likelihood calculations").

#include <memory>
#include <span>
#include <vector>

#include "phylo/alignment.hpp"
#include "phylo/subst_model.hpp"
#include "phylo/tree.hpp"

namespace hdcs::phylo {

class LikelihoodEngine {
 public:
  LikelihoodEngine(PatternAlignment alignment, std::shared_ptr<const SubstModel> model,
                   RateModel rates);

  /// Log-likelihood of the tree (leaf names must all be in the alignment).
  double log_likelihood(const Tree& tree);

  /// Optimize the branch above `node` by Brent search; returns the new
  /// log-likelihood. Branch lengths are searched in [min_bl, max_bl].
  double optimize_branch(Tree& tree, int node, double tol = 1e-4);

  /// Round-robin optimisation of the given branches (`passes` sweeps).
  double optimize_branches(Tree& tree, std::span<const int> nodes, int passes = 1,
                           double tol = 1e-4);

  /// All branches, `passes` sweeps (fastDNAml-style smoothing).
  double optimize_all_branches(Tree& tree, int passes = 2, double tol = 1e-4);

  [[nodiscard]] const PatternAlignment& alignment() const { return alignment_; }
  [[nodiscard]] const SubstModel& model() const { return *model_; }
  [[nodiscard]] const RateModel& rates() const { return rates_; }
  /// Number of full log-likelihood evaluations performed (cost accounting).
  [[nodiscard]] std::uint64_t eval_count() const { return evals_; }

  /// Abstract cost of one likelihood evaluation in WorkUnit::cost_ops
  /// currency (DP cell updates equivalent).
  [[nodiscard]] double cost_per_eval(int leaf_count) const;

  static constexpr double kMinBranch = 1e-8;
  static constexpr double kMaxBranch = 10.0;

 private:
  PatternAlignment alignment_;
  std::shared_ptr<const SubstModel> model_;
  RateModel rates_;
  std::uint64_t evals_ = 0;

  // Scratch buffers reused across evaluations.
  std::vector<double> partials_;    // [node][cat][pattern][state]
  std::vector<double> scale_log_;   // [pattern]
  std::vector<int> leaf_row_;       // node -> alignment row (-1 internal)
};

}  // namespace hdcs::phylo
