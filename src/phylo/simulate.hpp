#pragma once
// Sequence and tree simulation.
//
// Stands in for the paper's real 50-taxon dataset: generate a random tree,
// evolve sites down it under a chosen substitution model, and use the
// resulting alignment as the DPRml workload. Because the generating tree is
// known, tests can verify that ML search recovers (close to) it.

#include "phylo/alignment.hpp"
#include "phylo/subst_model.hpp"
#include "phylo/tree.hpp"
#include "util/rng.hpp"

namespace hdcs::phylo {

struct TreeSimSpec {
  int taxa = 20;
  double mean_branch_length = 0.08;
  std::string name_prefix = "t";
};

/// Random topology by sequential random insertion (uniform over edge
/// choices), branch lengths ~ Exp(mean_branch_length).
Tree random_tree(Rng& rng, const TreeSimSpec& spec);

struct SeqSimSpec {
  std::size_t sites = 500;
};

/// Evolve an alignment down `tree` under model+rates. Each site draws a
/// rate category from `rates`; the root state is drawn from the model's
/// stationary distribution.
Alignment simulate_alignment(Rng& rng, const Tree& tree, const SubstModel& model,
                             const RateModel& rates, const SeqSimSpec& spec);

}  // namespace hdcs::phylo
