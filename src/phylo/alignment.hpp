#pragma once
// Multiple sequence alignments and site-pattern compression.
//
// The likelihood of a site depends only on its column pattern, so identical
// columns are collapsed into (pattern, weight) pairs before any likelihood
// work — the standard optimisation every ML program (fastDNAml, PAL, ...)
// applies.

#include <cstdint>
#include <string>
#include <vector>

#include "bio/sequence.hpp"

namespace hdcs::phylo {

/// Missing data / gap state code (A=0 C=1 G=2 T=3).
inline constexpr std::uint8_t kMissing = 4;

struct Alignment {
  std::vector<std::string> names;
  std::vector<std::string> rows;  // aligned sequences, '-' for gaps

  [[nodiscard]] std::size_t taxon_count() const { return names.size(); }
  [[nodiscard]] std::size_t site_count() const {
    return rows.empty() ? 0 : rows.front().size();
  }

  /// Validate: non-empty, equal row lengths, characters in {ACGTUN-},
  /// unique non-empty names. Throws InputError.
  void validate() const;

  /// Build from aligned FASTA text.
  static Alignment from_fasta(std::string_view text);
  [[nodiscard]] std::string to_fasta() const;

  /// Sequential PHYLIP ("ntax nsites" header).
  static Alignment from_phylip(std::string_view text);
  [[nodiscard]] std::string to_phylip() const;
};

struct PatternAlignment {
  std::vector<std::string> names;
  /// codes[pattern * taxon_count + taxon] in {0..3, kMissing}.
  std::vector<std::uint8_t> codes;
  std::vector<double> weights;  // column multiplicities
  std::size_t taxa = 0;
  std::size_t patterns = 0;

  [[nodiscard]] std::uint8_t code(std::size_t pattern, std::size_t taxon) const {
    return codes[pattern * taxa + taxon];
  }
  [[nodiscard]] double site_count() const;
  /// Index of a taxon by name; throws InputError if absent.
  [[nodiscard]] std::size_t taxon_index(const std::string& name) const;
};

/// Collapse identical columns; column order of first occurrence preserved.
PatternAlignment compress(const Alignment& alignment);

}  // namespace hdcs::phylo
