#pragma once
// DNA substitution models.
//
// DPRml's selling point is "one of the most extensive ranges of DNA
// substitution models currently available" (paper §3.2); earlier parallel
// ML programs "only allowed the user to choose from a very limited number
// of DNA substitution models, which often leads to a poor model fit
// resulting in sub-optimal trees".
//
// All models here are time-reversible and specified by stationary base
// frequencies pi and exchangeabilities; P(t) = exp(Qt) is computed through
// the symmetric eigendecomposition (see matrix4.hpp), one code path for the
// whole GTR family:
//
//   JC69   — equal frequencies, one rate
//   F81    — arbitrary frequencies, one rate
//   K80    — equal frequencies, transition/transversion ratio kappa
//   HKY85  — arbitrary frequencies + kappa
//   F84    — arbitrary frequencies + kappa-like parameter (PHYLIP's model)
//   TN93   — separate purine/pyrimidine transition rates
//   GTR    — six exchangeabilities (the general reversible model)
//
// Rate heterogeneity: +G (discrete gamma, Yang 1994) and +I (proportion of
// invariant sites), composable with every model.

#include <memory>
#include <string>
#include <vector>

#include "phylo/matrix4.hpp"
#include "util/config.hpp"

namespace hdcs::phylo {

/// Base order everywhere: A=0, C=1, G=2, T=3.
class SubstModel {
 public:
  /// pi: stationary frequencies (must sum to 1); exchangeabilities: upper
  /// triangle {AC, AG, AT, CG, CT, GT} of the symmetric factor.
  SubstModel(std::string name, const Vec4& pi,
             const std::array<double, 6>& exchangeabilities);

  /// Transition probability matrix P(t) = exp(Qt); Q normalized so the
  /// expected substitution rate at stationarity is 1 (t in expected
  /// substitutions per site).
  [[nodiscard]] Matrix4 transition_probs(double t) const;

  [[nodiscard]] const Vec4& pi() const { return pi_; }
  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] const Matrix4& rate_matrix() const { return q_; }

  // ---- named constructors ----
  static SubstModel jc69();
  static SubstModel f81(const Vec4& pi);
  static SubstModel k80(double kappa);
  static SubstModel hky85(const Vec4& pi, double kappa);
  static SubstModel f84(const Vec4& pi, double kappa);
  static SubstModel tn93(const Vec4& pi, double kappa_r, double kappa_y);
  static SubstModel gtr(const Vec4& pi, const std::array<double, 6>& rates);

 private:
  std::string name_;
  Vec4 pi_;
  Matrix4 q_;          // normalized rate matrix
  // Cached spectral form: P(t) = left_ * diag(exp(lambda t)) * right_.
  Vec4 eigenvalues_;
  Matrix4 left_;       // Pi^{-1/2} V
  Matrix4 right_;      // V^T Pi^{1/2}
};

/// Among-site rate variation: category rates and probabilities.
struct RateModel {
  std::vector<double> rates{1.0};
  std::vector<double> probs{1.0};

  static RateModel uniform();
  /// Discrete gamma with `categories` equal-probability classes.
  static RateModel gamma(double alpha, int categories);
  /// Proportion p_inv of invariant sites; remaining mass rescaled so the
  /// mean rate stays 1. Composes with gamma.
  [[nodiscard]] RateModel with_invariant(double p_inv) const;

  [[nodiscard]] std::size_t category_count() const { return rates.size(); }
  /// Mean rate (should always be ~1).
  [[nodiscard]] double mean_rate() const;
};

/// Model + rate-model bundle parsed from a spec like "HKY85+G4+I" and a
/// Config carrying the numeric parameters (kappa, alpha, pinv, basefreq,
/// gtr_rates). Unknown names throw InputError.
struct ModelSpec {
  std::shared_ptr<SubstModel> model;
  RateModel rates;
  std::string spec_string;

  static ModelSpec parse(const std::string& spec, const Config& params);
};

}  // namespace hdcs::phylo
