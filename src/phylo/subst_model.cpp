#include "phylo/subst_model.hpp"

#include <cmath>

#include "phylo/optimize.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"

namespace hdcs::phylo {

namespace {
void validate_pi(const Vec4& pi) {
  double sum = 0;
  for (double p : pi) {
    if (p <= 0) throw InputError("base frequencies must be positive");
    sum += p;
  }
  if (std::fabs(sum - 1.0) > 1e-6) {
    throw InputError("base frequencies must sum to 1 (got " +
                     std::to_string(sum) + ")");
  }
}

Vec4 parse_pi(const Config& params) {
  if (!params.has("basefreq")) return {0.25, 0.25, 0.25, 0.25};
  auto parts = split(params.get_str("basefreq"), ',');
  if (parts.size() != 4) {
    throw InputError("basefreq must have 4 comma-separated values (A,C,G,T)");
  }
  Vec4 pi;
  for (int i = 0; i < 4; ++i) pi[static_cast<std::size_t>(i)] = parse_f64(parts[static_cast<std::size_t>(i)]);
  validate_pi(pi);
  return pi;
}
}  // namespace

SubstModel::SubstModel(std::string name, const Vec4& pi,
                       const std::array<double, 6>& s)
    : name_(std::move(name)), pi_(pi) {
  validate_pi(pi_);
  for (double x : s) {
    if (x <= 0) throw InputError("exchangeabilities must be positive");
  }

  // Build Q: off-diagonal Q_ij = s_ij * pi_j, diagonal = -row sum.
  // Upper-triangle order of s: (0,1) (0,2) (0,3) (1,2) (1,3) (2,3).
  static constexpr int kPair[6][2] = {{0, 1}, {0, 2}, {0, 3},
                                      {1, 2}, {1, 3}, {2, 3}};
  for (int k = 0; k < 6; ++k) {
    int i = kPair[k][0], j = kPair[k][1];
    q_(i, j) = s[static_cast<std::size_t>(k)] * pi_[static_cast<std::size_t>(j)];
    q_(j, i) = s[static_cast<std::size_t>(k)] * pi_[static_cast<std::size_t>(i)];
  }
  for (int i = 0; i < 4; ++i) {
    double row = 0;
    for (int j = 0; j < 4; ++j) {
      if (j != i) row += q_(i, j);
    }
    q_(i, i) = -row;
  }
  // Normalize mean rate at stationarity to 1.
  double mu = 0;
  for (int i = 0; i < 4; ++i) mu -= pi_[static_cast<std::size_t>(i)] * q_(i, i);
  if (mu <= 0) throw Error("degenerate rate matrix");
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 4; ++j) q_(i, j) /= mu;
  }

  // Spectral decomposition of the symmetrized matrix.
  Vec4 sqrt_pi, inv_sqrt_pi;
  for (int i = 0; i < 4; ++i) {
    sqrt_pi[static_cast<std::size_t>(i)] = std::sqrt(pi_[static_cast<std::size_t>(i)]);
    inv_sqrt_pi[static_cast<std::size_t>(i)] = 1.0 / sqrt_pi[static_cast<std::size_t>(i)];
  }
  Matrix4 b;
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 4; ++j) {
      b(i, j) = sqrt_pi[static_cast<std::size_t>(i)] * q_(i, j) *
                inv_sqrt_pi[static_cast<std::size_t>(j)];
    }
  }
  auto eig = sym_eigen(b);
  eigenvalues_ = eig.values;
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 4; ++j) {
      left_(i, j) = inv_sqrt_pi[static_cast<std::size_t>(i)] * eig.vectors(i, j);
      right_(i, j) = eig.vectors(j, i) * sqrt_pi[static_cast<std::size_t>(j)];
    }
  }
}

Matrix4 SubstModel::transition_probs(double t) const {
  if (t < 0) throw InputError("transition_probs: negative branch length");
  Vec4 exp_lt;
  for (int i = 0; i < 4; ++i) {
    exp_lt[static_cast<std::size_t>(i)] =
        std::exp(eigenvalues_[static_cast<std::size_t>(i)] * t);
  }
  Matrix4 p;
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 4; ++j) {
      double sum = 0;
      for (int k = 0; k < 4; ++k) {
        sum += left_(i, k) * exp_lt[static_cast<std::size_t>(k)] * right_(k, j);
      }
      // Clamp tiny negative values from roundoff.
      p(i, j) = sum < 0 ? 0 : sum;
    }
  }
  return p;
}

SubstModel SubstModel::jc69() {
  return SubstModel("JC69", {0.25, 0.25, 0.25, 0.25}, {1, 1, 1, 1, 1, 1});
}

SubstModel SubstModel::f81(const Vec4& pi) {
  return SubstModel("F81", pi, {1, 1, 1, 1, 1, 1});
}

SubstModel SubstModel::k80(double kappa) {
  if (kappa <= 0) throw InputError("K80: kappa must be positive");
  // Transitions: A<->G and C<->T.
  return SubstModel("K80", {0.25, 0.25, 0.25, 0.25},
                    {1, kappa, 1, 1, kappa, 1});
}

SubstModel SubstModel::hky85(const Vec4& pi, double kappa) {
  if (kappa <= 0) throw InputError("HKY85: kappa must be positive");
  return SubstModel("HKY85", pi, {1, kappa, 1, 1, kappa, 1});
}

SubstModel SubstModel::f84(const Vec4& pi, double kappa) {
  if (kappa < 0) throw InputError("F84: kappa must be non-negative");
  double pi_r = pi[0] + pi[2];  // purines A, G
  double pi_y = pi[1] + pi[3];  // pyrimidines C, T
  return SubstModel("F84", pi,
                    {1, 1.0 + kappa / pi_r, 1, 1, 1.0 + kappa / pi_y, 1});
}

SubstModel SubstModel::tn93(const Vec4& pi, double kappa_r, double kappa_y) {
  if (kappa_r <= 0 || kappa_y <= 0) {
    throw InputError("TN93: kappas must be positive");
  }
  return SubstModel("TN93", pi, {1, kappa_r, 1, 1, kappa_y, 1});
}

SubstModel SubstModel::gtr(const Vec4& pi, const std::array<double, 6>& rates) {
  return SubstModel("GTR", pi, rates);
}

RateModel RateModel::uniform() { return RateModel{}; }

RateModel RateModel::gamma(double alpha, int categories) {
  RateModel rm;
  rm.rates = discrete_gamma_rates(alpha, categories);
  rm.probs.assign(rm.rates.size(), 1.0 / static_cast<double>(rm.rates.size()));
  return rm;
}

RateModel RateModel::with_invariant(double p_inv) const {
  if (p_inv < 0 || p_inv >= 1) {
    throw InputError("invariant proportion must be in [0, 1)");
  }
  if (p_inv == 0) return *this;
  RateModel rm;
  rm.rates.clear();  // drop the default single uniform category
  rm.probs.clear();
  rm.rates.push_back(0.0);
  rm.probs.push_back(p_inv);
  // Rescale the variable categories so the overall mean rate stays 1.
  double scale = 1.0 / (1.0 - p_inv);
  for (std::size_t i = 0; i < rates.size(); ++i) {
    rm.rates.push_back(rates[i] * scale);
    rm.probs.push_back(probs[i] * (1.0 - p_inv));
  }
  return rm;
}

double RateModel::mean_rate() const {
  double m = 0;
  for (std::size_t i = 0; i < rates.size(); ++i) m += rates[i] * probs[i];
  return m;
}

ModelSpec ModelSpec::parse(const std::string& spec, const Config& params) {
  auto parts = split(spec, '+');
  if (parts.empty() || parts[0].empty()) throw InputError("empty model spec");
  std::string base = to_upper(trim(parts[0]));

  Vec4 pi = parse_pi(params);
  double kappa = params.get_f64("kappa", 2.0);

  ModelSpec out;
  out.spec_string = spec;
  if (base == "JC69" || base == "JC") {
    out.model = std::make_shared<SubstModel>(SubstModel::jc69());
  } else if (base == "F81") {
    out.model = std::make_shared<SubstModel>(SubstModel::f81(pi));
  } else if (base == "K80" || base == "K2P") {
    out.model = std::make_shared<SubstModel>(SubstModel::k80(kappa));
  } else if (base == "HKY85" || base == "HKY") {
    out.model = std::make_shared<SubstModel>(SubstModel::hky85(pi, kappa));
  } else if (base == "F84") {
    out.model = std::make_shared<SubstModel>(SubstModel::f84(pi, kappa));
  } else if (base == "TN93") {
    out.model = std::make_shared<SubstModel>(SubstModel::tn93(
        pi, params.get_f64("kappa_r", kappa), params.get_f64("kappa_y", kappa)));
  } else if (base == "GTR") {
    std::array<double, 6> rates = {1, 1, 1, 1, 1, 1};
    if (params.has("gtr_rates")) {
      auto fields = split(params.get_str("gtr_rates"), ',');
      if (fields.size() != 6) {
        throw InputError("gtr_rates must have 6 comma-separated values");
      }
      for (std::size_t i = 0; i < 6; ++i) rates[i] = parse_f64(fields[i]);
    }
    out.model = std::make_shared<SubstModel>(SubstModel::gtr(pi, rates));
  } else {
    throw InputError("unknown substitution model: " + base);
  }

  out.rates = RateModel::uniform();
  double p_inv = 0;
  for (std::size_t i = 1; i < parts.size(); ++i) {
    std::string mod = to_upper(trim(parts[i]));
    if (mod.empty()) throw InputError("empty model modifier in: " + spec);
    if (mod[0] == 'G') {
      int cats = 4;
      if (mod.size() > 1) cats = static_cast<int>(parse_i64(mod.substr(1)));
      double alpha = params.get_f64("alpha", 0.5);
      out.rates = RateModel::gamma(alpha, cats);
    } else if (mod == "I") {
      p_inv = params.get_f64("pinv", 0.1);
    } else {
      throw InputError("unknown model modifier '+" + mod + "' in: " + spec);
    }
  }
  if (p_inv > 0) out.rates = out.rates.with_invariant(p_inv);
  return out;
}

}  // namespace hdcs::phylo
