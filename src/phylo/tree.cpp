#include "phylo/tree.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>
#include <set>

#include "util/error.hpp"

namespace hdcs::phylo {

const TreeNode& Tree::at(int node) const {
  check_node(node);
  return nodes_[static_cast<std::size_t>(node)];
}

TreeNode& Tree::mut(int node) {
  check_node(node);
  return nodes_[static_cast<std::size_t>(node)];
}

void Tree::check_node(int node) const {
  if (node < 0 || node >= node_count()) {
    throw InputError("tree node index out of range: " + std::to_string(node));
  }
}

int Tree::add_node(int parent, double branch_length, const std::string& name) {
  if (branch_length < 0) throw InputError("negative branch length");
  int idx = node_count();
  TreeNode node;
  node.parent = parent;
  node.branch_length = branch_length;
  node.name = name;
  nodes_.push_back(std::move(node));
  if (parent >= 0) {
    mut(parent).children.push_back(idx);
  } else {
    if (root_ >= 0) throw InputError("tree already has a root");
    root_ = idx;
  }
  return idx;
}

Tree Tree::three_taxon(const std::string& a, const std::string& b,
                       const std::string& c, double branch_length) {
  Tree t;
  int root = t.add_node(-1, 0);
  t.add_node(root, branch_length, a);
  t.add_node(root, branch_length, b);
  t.add_node(root, branch_length, c);
  return t;
}

int Tree::leaf_count() const {
  int n = 0;
  for (const auto& node : nodes_) {
    if (node.children.empty()) ++n;
  }
  return n;
}

void Tree::set_branch_length(int node, double bl) {
  if (bl < 0) throw InputError("negative branch length");
  mut(node).branch_length = bl;
}

std::vector<int> Tree::postorder() const {
  std::vector<int> order;
  if (root_ < 0) return order;
  order.reserve(nodes_.size());
  // Iterative DFS emitting children before parents.
  std::vector<std::pair<int, std::size_t>> stack;  // (node, next child slot)
  stack.emplace_back(root_, 0);
  while (!stack.empty()) {
    auto& [node, slot] = stack.back();
    const auto& children = at(node).children;
    if (slot < children.size()) {
      int child = children[slot];
      ++slot;
      stack.emplace_back(child, 0);
    } else {
      order.push_back(node);
      stack.pop_back();
    }
  }
  return order;
}

std::vector<int> Tree::leaves() const {
  std::vector<int> out;
  for (int i = 0; i < node_count(); ++i) {
    if (is_leaf(i)) out.push_back(i);
  }
  return out;
}

std::vector<std::string> Tree::leaf_names() const {
  std::vector<std::string> out;
  for (int i : leaves()) out.push_back(at(i).name);
  return out;
}

std::vector<int> Tree::edge_nodes() const {
  std::vector<int> out;
  for (int i = 0; i < node_count(); ++i) {
    if (i != root_) out.push_back(i);
  }
  return out;
}

std::optional<int> Tree::find_leaf(const std::string& name) const {
  for (int i = 0; i < node_count(); ++i) {
    if (is_leaf(i) && at(i).name == name) return i;
  }
  return std::nullopt;
}

double Tree::total_length() const {
  double sum = 0;
  for (int i = 0; i < node_count(); ++i) {
    if (i != root_) sum += at(i).branch_length;
  }
  return sum;
}

int Tree::insert_leaf_on_edge(int edge_node, const std::string& name,
                              double pendant, double split_fraction) {
  check_node(edge_node);
  if (edge_node == root_) throw InputError("cannot insert on the root (no edge)");
  if (split_fraction <= 0 || split_fraction >= 1) {
    throw InputError("split_fraction must be in (0, 1)");
  }
  if (pendant < 0) throw InputError("negative pendant branch length");

  int old_parent = at(edge_node).parent;
  double old_bl = at(edge_node).branch_length;

  // New internal node takes edge_node's place under old_parent.
  int mid = node_count();
  TreeNode mid_node;
  mid_node.parent = old_parent;
  mid_node.branch_length = old_bl * split_fraction;
  nodes_.push_back(std::move(mid_node));

  auto& siblings = mut(old_parent).children;
  *std::find(siblings.begin(), siblings.end(), edge_node) = mid;

  mut(edge_node).parent = mid;
  mut(edge_node).branch_length = old_bl * (1.0 - split_fraction);
  mut(mid).children.push_back(edge_node);

  int leaf = node_count();
  TreeNode leaf_node;
  leaf_node.parent = mid;
  leaf_node.branch_length = pendant;
  leaf_node.name = name;
  nodes_.push_back(std::move(leaf_node));
  mut(mid).children.push_back(leaf);
  return leaf;
}

void Tree::remove_leaf(int leaf) {
  check_node(leaf);
  if (!is_leaf(leaf)) throw InputError("remove_leaf: node is not a leaf");
  if (leaf == root_) throw InputError("remove_leaf: tree has a single node");

  int parent = at(leaf).parent;
  auto& siblings = mut(parent).children;
  siblings.erase(std::find(siblings.begin(), siblings.end(), leaf));

  // Rebuild the arena without the leaf, collapsing a degree-2 parent.
  Tree rebuilt;
  // Collapse case A: parent is internal non-root left with one child.
  // Collapse case B: parent is the root left with one child -> child
  // becomes the new root.
  std::map<int, int> remap;
  // DFS copy from root_.
  std::vector<std::pair<int, int>> stack;  // (old node, new parent)
  int start = root_;
  if (parent == root_ && at(root_).children.size() == 1) {
    start = at(root_).children[0];
  }
  stack.emplace_back(start, -1);
  while (!stack.empty()) {
    auto [old_node, new_parent] = stack.back();
    stack.pop_back();
    const TreeNode& src = at(old_node);
    if (old_node != start && src.children.size() == 1) {
      // Degree-2 internal node (the old parent): splice through, adding
      // branch lengths.
      int child = src.children[0];
      const TreeNode& ch = at(child);
      int copied = rebuilt.add_node(new_parent,
                                    src.branch_length + ch.branch_length, ch.name);
      remap[child] = copied;
      for (auto it = ch.children.rbegin(); it != ch.children.rend(); ++it) {
        stack.emplace_back(*it, copied);
      }
      continue;
    }
    int copied = rebuilt.add_node(new_parent,
                                  old_node == start ? 0 : src.branch_length,
                                  src.name);
    remap[old_node] = copied;
    for (auto it = src.children.rbegin(); it != src.children.rend(); ++it) {
      stack.emplace_back(*it, copied);
    }
  }
  *this = std::move(rebuilt);
}

std::vector<int> Tree::internal_edges() const {
  std::vector<int> out;
  for (int i = 0; i < node_count(); ++i) {
    if (i != root_ && !is_leaf(i)) out.push_back(i);
  }
  return out;
}

void Tree::nni(int edge_node, int variant) {
  check_node(edge_node);
  if (edge_node == root_ || is_leaf(edge_node)) {
    throw InputError("NNI requires an internal edge");
  }
  if (variant != 0 && variant != 1) throw InputError("NNI variant must be 0 or 1");
  int parent = at(edge_node).parent;
  if (at(edge_node).children.size() < 2) {
    throw InputError("NNI: child endpoint must have two subtrees");
  }
  // Sibling subtree on the parent side.
  int sibling = -1;
  for (int c : at(parent).children) {
    if (c != edge_node) {
      sibling = c;
      break;
    }
  }
  if (sibling < 0) throw InputError("NNI: no sibling subtree at parent");

  int moved = at(edge_node).children[static_cast<std::size_t>(variant)];

  // Swap `moved` (child of edge_node) with `sibling` (child of parent).
  auto& pc = mut(parent).children;
  auto& vc = mut(edge_node).children;
  *std::find(pc.begin(), pc.end(), sibling) = moved;
  *std::find(vc.begin(), vc.end(), moved) = sibling;
  mut(moved).parent = parent;
  mut(sibling).parent = edge_node;
}

// ---- Newick ----

namespace {
struct NewickParser {
  std::string_view text;
  std::size_t pos = 0;

  void skip_ws() {
    while (pos < text.size() &&
           (text[pos] == ' ' || text[pos] == '\t' || text[pos] == '\n' ||
            text[pos] == '\r')) {
      ++pos;
    }
  }

  [[noreturn]] void fail(const std::string& why) const {
    throw InputError("Newick parse error at position " + std::to_string(pos) +
                     ": " + why);
  }

  char peek() {
    skip_ws();
    if (pos >= text.size()) fail("unexpected end of input");
    return text[pos];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos;
  }

  std::string read_label() {
    skip_ws();
    std::size_t start = pos;
    while (pos < text.size()) {
      char c = text[pos];
      if (c == '(' || c == ')' || c == ',' || c == ':' || c == ';' ||
          c == ' ' || c == '\t' || c == '\n' || c == '\r') {
        break;
      }
      ++pos;
    }
    return std::string(text.substr(start, pos - start));
  }

  double read_length() {
    skip_ws();
    std::size_t start = pos;
    while (pos < text.size()) {
      char c = text[pos];
      if ((c >= '0' && c <= '9') || c == '.' || c == '-' || c == '+' ||
          c == 'e' || c == 'E') {
        ++pos;
      } else {
        break;
      }
    }
    if (pos == start) fail("expected branch length after ':'");
    try {
      return std::stod(std::string(text.substr(start, pos - start)));
    } catch (const std::exception&) {
      fail("bad branch length");
    }
  }

  void subtree(Tree& tree, int parent) {
    skip_ws();
    int node;
    if (peek() == '(') {
      ++pos;
      node = tree.add_node(parent, 0);
      subtree(tree, node);
      while (peek() == ',') {
        ++pos;
        subtree(tree, node);
      }
      expect(')');
      // Optional internal label (ignored beyond storage).
      skip_ws();
      if (pos < text.size() && text[pos] != ':' && text[pos] != ',' &&
          text[pos] != ')' && text[pos] != ';') {
        read_label();
      }
    } else {
      std::string name = read_label();
      if (name.empty()) fail("expected taxon name");
      node = tree.add_node(parent, 0, name);
    }
    skip_ws();
    if (pos < text.size() && text[pos] == ':') {
      ++pos;
      double bl = read_length();
      if (bl < 0) fail("negative branch length");
      tree.set_branch_length(node, bl);
    }
  }
};
}  // namespace

Tree Tree::parse_newick(std::string_view text) {
  NewickParser parser{text};
  Tree tree;
  parser.subtree(tree, -1);
  parser.skip_ws();
  if (parser.pos < text.size() && text[parser.pos] == ';') ++parser.pos;
  parser.skip_ws();
  if (parser.pos != text.size()) parser.fail("trailing characters");
  if (tree.node_count() == 0) parser.fail("empty tree");
  return tree;
}

void Tree::write_newick(std::string& out, int node, int precision) const {
  const TreeNode& n = at(node);
  if (n.children.empty()) {
    out += n.name;
  } else {
    out.push_back('(');
    for (std::size_t i = 0; i < n.children.size(); ++i) {
      if (i > 0) out.push_back(',');
      write_newick(out, n.children[i], precision);
    }
    out.push_back(')');
  }
  if (node != root_) {
    char buf[48];
    std::snprintf(buf, sizeof(buf), ":%.*g", precision, n.branch_length);
    out += buf;
  }
}

std::string Tree::to_newick(int precision) const {
  if (root_ < 0) throw Error("to_newick: empty tree");
  std::string out;
  write_newick(out, root_, precision);
  out.push_back(';');
  return out;
}

// ---- Robinson–Foulds ----

namespace {
using Split = std::set<std::string>;

/// Nontrivial splits (leaf-name sets of each internal edge's subtree,
/// canonicalized to the side not containing the reference leaf).
std::set<Split> splits_of(const Tree& tree, const std::string& ref_leaf,
                          const std::set<std::string>& all) {
  std::set<Split> out;
  // Collect subtree leaf sets bottom-up.
  std::map<int, Split> below;
  for (int node : tree.postorder()) {
    Split s;
    if (tree.is_leaf(node)) {
      s.insert(tree.at(node).name);
    } else {
      for (int c : tree.at(node).children) {
        s.insert(below[c].begin(), below[c].end());
      }
    }
    if (node != tree.root() && !tree.is_leaf(node) && s.size() >= 2 &&
        s.size() <= all.size() - 2) {
      Split canonical = s;
      if (canonical.count(ref_leaf)) {
        Split flipped;
        for (const auto& name : all) {
          if (!canonical.count(name)) flipped.insert(name);
        }
        canonical = std::move(flipped);
      }
      out.insert(canonical);
    }
    below[node] = std::move(s);
  }
  return out;
}
}  // namespace

int rf_distance(const Tree& a, const Tree& b) {
  auto names_a = a.leaf_names();
  auto names_b = b.leaf_names();
  std::set<std::string> set_a(names_a.begin(), names_a.end());
  std::set<std::string> set_b(names_b.begin(), names_b.end());
  if (set_a != set_b) throw InputError("rf_distance: different leaf sets");
  if (set_a.size() != names_a.size()) {
    throw InputError("rf_distance: duplicate leaf names");
  }
  const std::string& ref = *set_a.begin();
  auto sa = splits_of(a, ref, set_a);
  auto sb = splits_of(b, ref, set_a);
  int diff = 0;
  for (const auto& s : sa) {
    if (!sb.count(s)) ++diff;
  }
  for (const auto& s : sb) {
    if (!sa.count(s)) ++diff;
  }
  return diff;
}

}  // namespace hdcs::phylo
