#pragma once
// Dispatched kernels for LikelihoodEngine's partials inner loop — the
// "multiply the child partials through the branch transition matrix"
// recursion that dominates DPRml's runtime.
//
// One call processes every pattern of one (child, rate-category) pair:
//
//   node[k*4 + i]  (op)=  sum_j pm[i*4 + j] * child[k*4 + j]
//
// for k in [0, count), where op is plain assignment for the first child
// (assign == true) and element-wise multiply-accumulate into the running
// product for later children. pm is the row-major 4x4 transition matrix.
//
// Every tier computes the sum in the identical association
// ((p0*c0 + p1*c1) + p2*c2) + p3*c3 and none is compiled with FMA
// contraction, so all tiers produce bit-identical doubles — the
// equivalence tests assert exact equality, not a tolerance.
//
//   scalar    the reference loop with auto-vectorization disabled
//             (HDCS_SIMD=scalar: genuinely scalar code)
//   portable  the same loop, compiler-vectorized at the baseline ISA
//   avx2      explicit 4-wide _mm256d intrinsics (broadcast-column form)

#include <cstddef>

#include "util/simd.hpp"

namespace hdcs::phylo {

using PartialsCombineFn = void (*)(const double* pm, const double* child,
                                   double* node, std::size_t count,
                                   bool assign);

PartialsCombineFn partials_combine_scalar();
PartialsCombineFn partials_combine_portable();
PartialsCombineFn partials_combine_avx2();  // forwards to portable when the
                                            // binary lacks AVX2 codegen

/// The kernel for a dispatch tier (util/simd.hpp).
PartialsCombineFn partials_combine_for(SimdTier tier);

}  // namespace hdcs::phylo
