#pragma once
// Dense 4x4 real matrices for nucleotide substitution models, plus the
// symmetric eigendecomposition used to exponentiate reversible rate
// matrices: for reversible Q with stationary distribution pi,
// B = Pi^{1/2} Q Pi^{-1/2} is symmetric, so
//     P(t) = exp(Qt) = Pi^{-1/2} V exp(Lambda t) V^T Pi^{1/2}.

#include <array>

namespace hdcs::phylo {

using Vec4 = std::array<double, 4>;

struct Matrix4 {
  // Row-major: m[row][col].
  std::array<Vec4, 4> m{};

  double& operator()(int r, int c) { return m[static_cast<std::size_t>(r)]
                                             [static_cast<std::size_t>(c)]; }
  double operator()(int r, int c) const { return m[static_cast<std::size_t>(r)]
                                                  [static_cast<std::size_t>(c)]; }

  static Matrix4 identity();
  static Matrix4 zero();

  friend Matrix4 operator*(const Matrix4& a, const Matrix4& b);
  [[nodiscard]] Matrix4 transpose() const;

  /// max |a - b| over entries.
  static double max_abs_diff(const Matrix4& a, const Matrix4& b);
};

/// Eigendecomposition of a symmetric 4x4 matrix via cyclic Jacobi.
/// Returns eigenvalues (ascending) and the orthogonal matrix of column
/// eigenvectors V such that A = V diag(w) V^T.
struct SymEigen {
  Vec4 values;
  Matrix4 vectors;
};
SymEigen sym_eigen(const Matrix4& a);

}  // namespace hdcs::phylo
