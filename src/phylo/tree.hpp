#pragma once
// Phylogenetic trees.
//
// Node-arena representation: nodes are indices into a vector, each with a
// parent link, children, a branch length (to its parent) and, for leaves, a
// taxon name. Unrooted trees are stored in the conventional way as a tree
// rooted at an internal node of degree 3 ("trifurcating root"), which is
// what Newick files of unrooted ML trees contain.
//
// Supports exactly what DPRml's stepwise-insertion search needs: Newick
// round-tripping, edge enumeration, leaf insertion on an edge, and NNI
// rearrangements, plus Robinson–Foulds distance for tests.

#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace hdcs::phylo {

struct TreeNode {
  int parent = -1;
  std::vector<int> children;
  double branch_length = 0;  // length of the edge to parent (root: unused)
  std::string name;          // non-empty for leaves
};

class Tree {
 public:
  Tree() = default;

  /// The unique unrooted topology on three taxa.
  static Tree three_taxon(const std::string& a, const std::string& b,
                          const std::string& c, double branch_length = 0.1);

  /// Parse a Newick string (with branch lengths); throws InputError.
  static Tree parse_newick(std::string_view text);

  /// Serialize to Newick with branch lengths ("(...);").
  [[nodiscard]] std::string to_newick(int precision = 17) const;

  // ---- structure queries ----
  [[nodiscard]] int root() const { return root_; }
  [[nodiscard]] int node_count() const { return static_cast<int>(nodes_.size()); }
  [[nodiscard]] int leaf_count() const;
  [[nodiscard]] bool is_leaf(int node) const { return at(node).children.empty(); }
  [[nodiscard]] const TreeNode& at(int node) const;
  [[nodiscard]] int parent(int node) const { return at(node).parent; }
  [[nodiscard]] double branch_length(int node) const { return at(node).branch_length; }
  void set_branch_length(int node, double bl);

  /// All nodes in postorder (children before parents, root last).
  [[nodiscard]] std::vector<int> postorder() const;
  /// Leaf node indices (in index order).
  [[nodiscard]] std::vector<int> leaves() const;
  [[nodiscard]] std::vector<std::string> leaf_names() const;
  /// Every edge, identified by its child node (all non-root nodes).
  /// An unrooted n-leaf tree has 2n-3 of these.
  [[nodiscard]] std::vector<int> edge_nodes() const;
  /// Find a leaf by name; nullopt if absent.
  [[nodiscard]] std::optional<int> find_leaf(const std::string& name) const;
  /// Sum of all branch lengths.
  [[nodiscard]] double total_length() const;

  // ---- building / editing ----

  /// Append a node under `parent` (-1 for the root). Returns its index.
  int add_node(int parent, double branch_length, const std::string& name = "");

  /// Split the edge above `edge_node` with a new internal node and hang a
  /// new leaf `name` off it. The old branch length is divided
  /// (split_fraction goes to the upper half); the leaf gets `pendant`.
  /// Returns the new leaf's index. This is the stepwise-insertion move.
  int insert_leaf_on_edge(int edge_node, const std::string& name, double pendant,
                          double split_fraction = 0.5);

  /// Remove a leaf and collapse its degree-2 parent (inverse of insertion).
  void remove_leaf(int leaf);

  /// The two NNI rearrangements across the internal edge above
  /// `edge_node` (both endpoints internal). variant selects which of the
  /// two swaps. Throws if the edge is not internal.
  void nni(int edge_node, int variant);

  /// Internal edges eligible for NNI.
  [[nodiscard]] std::vector<int> internal_edges() const;

 private:
  TreeNode& mut(int node);
  void check_node(int node) const;
  void write_newick(std::string& out, int node, int precision) const;

  std::vector<TreeNode> nodes_;
  int root_ = -1;
};

/// Robinson–Foulds distance: number of splits present in exactly one tree.
/// Both trees must be over the same leaf set; throws otherwise.
int rf_distance(const Tree& a, const Tree& b);

}  // namespace hdcs::phylo
