#pragma once
// Distance methods: Jukes–Cantor distances and neighbor joining.
//
// Serves two roles: the distance-based heuristic baseline the paper
// contrasts ML against (its ref [15] uses "simple distance based
// heuristics"), and a sane starting point / sanity check for tests.

#include <vector>

#include "phylo/alignment.hpp"
#include "phylo/tree.hpp"

namespace hdcs::phylo {

/// Symmetric matrix of pairwise JC69 distances:
///   d = -3/4 ln(1 - 4p/3), p = mismatch fraction over shared sites.
/// Saturated pairs (p >= 3/4) are capped at `max_distance`.
std::vector<std::vector<double>> jc_distance_matrix(const Alignment& alignment,
                                                    double max_distance = 5.0);

/// Saitou & Nei neighbor joining. Needs >= 3 taxa. Negative branch
/// estimates are clamped to 0 (standard practice).
Tree neighbor_joining(const std::vector<std::vector<double>>& distances,
                      const std::vector<std::string>& names);

/// Convenience: NJ tree straight from an alignment.
Tree nj_tree(const Alignment& alignment);

}  // namespace hdcs::phylo
