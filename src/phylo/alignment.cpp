#include "phylo/alignment.hpp"

#include <map>
#include <set>
#include <sstream>

#include "bio/fasta.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"

namespace hdcs::phylo {

void Alignment::validate() const {
  if (names.size() != rows.size()) {
    throw InputError("alignment: names/rows size mismatch");
  }
  if (names.empty()) throw InputError("alignment: no sequences");
  std::size_t width = rows.front().size();
  if (width == 0) throw InputError("alignment: zero-length sequences");
  std::set<std::string> seen;
  for (std::size_t i = 0; i < names.size(); ++i) {
    if (names[i].empty()) throw InputError("alignment: empty taxon name");
    if (!seen.insert(names[i]).second) {
      throw InputError("alignment: duplicate taxon name: " + names[i]);
    }
    if (rows[i].size() != width) {
      throw InputError("alignment: row '" + names[i] + "' length " +
                       std::to_string(rows[i].size()) + " != " +
                       std::to_string(width));
    }
    for (char c : rows[i]) {
      if (c != '-' && c != 'N' && bio::dna_index(c) == 4) {
        throw InputError(std::string("alignment: invalid character '") + c +
                         "' in row '" + names[i] + "'");
      }
    }
  }
}

Alignment Alignment::from_fasta(std::string_view text) {
  Alignment aln;
  // Parse leniently ourselves: rows may contain '-' which bio::parse_fasta
  // rejects for plain sequences.
  std::string current_name;
  std::string current_row;
  auto flush = [&] {
    if (!current_name.empty()) {
      aln.names.push_back(current_name);
      aln.rows.push_back(current_row);
    }
    current_name.clear();
    current_row.clear();
  };
  std::size_t start = 0;
  while (start <= text.size()) {
    std::size_t end = text.find('\n', start);
    if (end == std::string_view::npos) end = text.size();
    auto line = trim(text.substr(start, end - start));
    if (!line.empty()) {
      if (line.front() == '>') {
        flush();
        auto header = trim(line.substr(1));
        auto space = header.find_first_of(" \t");
        current_name = std::string(
            space == std::string_view::npos ? header : header.substr(0, space));
      } else {
        if (current_name.empty()) {
          throw InputError("alignment FASTA: data before first header");
        }
        for (char c : line) current_row.push_back(
            static_cast<char>(std::toupper(static_cast<unsigned char>(c))));
      }
    }
    if (end == text.size()) break;
    start = end + 1;
  }
  flush();
  aln.validate();
  return aln;
}

std::string Alignment::to_fasta() const {
  std::string out;
  for (std::size_t i = 0; i < names.size(); ++i) {
    out.push_back('>');
    out += names[i];
    out.push_back('\n');
    for (std::size_t j = 0; j < rows[i].size(); j += 70) {
      out += rows[i].substr(j, 70);
      out.push_back('\n');
    }
  }
  return out;
}

Alignment Alignment::from_phylip(std::string_view text) {
  std::istringstream in{std::string(text)};
  std::size_t ntax = 0, nsites = 0;
  if (!(in >> ntax >> nsites) || ntax == 0 || nsites == 0) {
    throw InputError("PHYLIP: bad header");
  }
  Alignment aln;
  for (std::size_t i = 0; i < ntax; ++i) {
    std::string name, row;
    if (!(in >> name)) throw InputError("PHYLIP: missing taxon name");
    std::string chunk;
    while (row.size() < nsites && in >> chunk) {
      for (char c : chunk) row.push_back(
          static_cast<char>(std::toupper(static_cast<unsigned char>(c))));
    }
    if (row.size() != nsites) {
      throw InputError("PHYLIP: row '" + name + "' has wrong length");
    }
    aln.names.push_back(std::move(name));
    aln.rows.push_back(std::move(row));
  }
  aln.validate();
  return aln;
}

std::string Alignment::to_phylip() const {
  std::ostringstream out;
  out << taxon_count() << " " << site_count() << "\n";
  for (std::size_t i = 0; i < names.size(); ++i) {
    out << names[i] << " " << rows[i] << "\n";
  }
  return out.str();
}

double PatternAlignment::site_count() const {
  double n = 0;
  for (double w : weights) n += w;
  return n;
}

std::size_t PatternAlignment::taxon_index(const std::string& name) const {
  for (std::size_t i = 0; i < names.size(); ++i) {
    if (names[i] == name) return i;
  }
  throw InputError("taxon not in alignment: " + name);
}

PatternAlignment compress(const Alignment& alignment) {
  alignment.validate();
  PatternAlignment out;
  out.names = alignment.names;
  out.taxa = alignment.taxon_count();

  std::map<std::string, std::size_t> index;
  std::size_t sites = alignment.site_count();
  std::string column(out.taxa, 0);
  for (std::size_t s = 0; s < sites; ++s) {
    for (std::size_t t = 0; t < out.taxa; ++t) {
      char c = alignment.rows[t][s];
      std::uint8_t code =
          (c == '-' || c == 'N') ? kMissing
                                 : static_cast<std::uint8_t>(bio::dna_index(c));
      column[t] = static_cast<char>(code);
    }
    auto [it, inserted] = index.emplace(column, out.patterns);
    if (inserted) {
      for (char c : column) out.codes.push_back(static_cast<std::uint8_t>(c));
      out.weights.push_back(1.0);
      out.patterns += 1;
    } else {
      out.weights[it->second] += 1.0;
    }
  }
  return out;
}

}  // namespace hdcs::phylo
