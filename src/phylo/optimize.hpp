#pragma once
// One-dimensional function optimization (Brent) and the special functions
// needed for discrete-gamma rate heterogeneity (Yang 1994).

#include <functional>

namespace hdcs::phylo {

struct BrentResult {
  double x = 0;        // argmin
  double value = 0;    // f(x)
  int evaluations = 0;
};

/// Minimize f over [lo, hi] with Brent's method (golden section +
/// successive parabolic interpolation). `tol` is the absolute x tolerance.
BrentResult brent_minimize(const std::function<double(double)>& f, double lo,
                           double hi, double tol = 1e-6, int max_iter = 100);

/// ln Gamma(x), x > 0 (Lanczos).
double log_gamma(double x);

/// Regularized lower incomplete gamma P(a, x) = gamma(a,x)/Gamma(a).
double gamma_p(double a, double x);

/// Inverse of gamma_p in x for fixed a: smallest x with P(a, x) = p.
double gamma_p_inverse(double a, double p);

/// Mean rates of the k equal-probability categories of a Gamma(alpha,
/// 1/alpha) distribution (mean 1) — Yang's discrete gamma.
/// Uses the mean (not median) of each bin, the standard choice.
std::vector<double> discrete_gamma_rates(double alpha, int categories);

}  // namespace hdcs::phylo
