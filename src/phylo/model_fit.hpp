#pragma once
// Model parameter fitting and model selection.
//
// The paper's DPRml pitch leans on model fit: earlier parallel ML programs
// "only allowed the user to choose from a very limited number of DNA
// substitution models, which often leads to a poor model fit resulting in
// sub-optimal trees" (§3.2). This module provides what a user needs to
// *choose* a good model before a run: empirical base frequencies, maximum-
// likelihood estimation of the scalar model parameters (kappa, gamma
// alpha, invariant proportion) on a fixed tree, and AIC/BIC ranking across
// candidate model specs.

#include <string>
#include <vector>

#include "phylo/alignment.hpp"
#include "phylo/subst_model.hpp"
#include "phylo/tree.hpp"
#include "util/config.hpp"

namespace hdcs::phylo {

/// Observed base frequencies (gaps/N ignored), normalized to sum 1.
Vec4 empirical_base_frequencies(const Alignment& alignment);

struct ScalarFit {
  double value = 0;          // fitted parameter
  double log_likelihood = 0; // at the fitted value (branch lengths fixed)
  int evaluations = 0;       // likelihood evaluations spent
};

/// Fit one scalar parameter of a model spec by Brent search on a fixed
/// tree (branch lengths are NOT re-optimised per evaluation — the standard
/// fast profile used for model screening). `param` is the Config key the
/// spec reads ("kappa", "alpha", "pinv").
ScalarFit fit_scalar(const PatternAlignment& patterns, const Tree& tree,
                     const std::string& model_spec, const Config& base_params,
                     const std::string& param, double lo, double hi,
                     double tol = 1e-3);

struct ModelScore {
  std::string spec;
  double log_likelihood = 0;
  int free_parameters = 0;
  double aic = 0;
  double bic = 0;
};

/// Number of free parameters of a model spec (frequencies count 3 when
/// unequal, kappa 1, GTR exchangeabilities 5, +G 1, +I 1). Branch lengths
/// are excluded (identical across specs on a fixed tree).
int model_free_parameters(const std::string& spec, const Config& params);

/// Evaluate candidate model specs on a fixed tree with the given
/// parameters and rank them by AIC (ascending). Scalar parameters present
/// in `params` are used as-is; pass fitted values for a fair comparison.
std::vector<ModelScore> rank_models(const PatternAlignment& patterns,
                                    const Tree& tree,
                                    const std::vector<std::string>& specs,
                                    const Config& params);

}  // namespace hdcs::phylo
