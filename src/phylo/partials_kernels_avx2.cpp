// AVX2 tier of the partials-combine kernel: one __m256d holds the four
// states of one pattern, the 4x4 matvec becomes broadcast-column
// multiply-adds in the same association as the scalar expression
// (((p0*c0 + p1*c1) + p2*c2) + p3*c3), and this TU is compiled with -mavx2
// but NOT -mfma — no contraction, so results are bit-identical to the
// scalar and portable tiers (see partials_kernels.hpp).

#include "phylo/partials_kernels.hpp"

#if defined(__AVX2__)

#include <immintrin.h>

namespace hdcs::phylo {

namespace {

template <bool kAssign>
void combine_body_avx2(const double* pm, const double* child, double* node,
                       std::size_t count) {
  // col_j[i] = pm[i][j]: the matrix columns, loaded once per call.
  const __m256d col0 = _mm256_set_pd(pm[12], pm[8], pm[4], pm[0]);
  const __m256d col1 = _mm256_set_pd(pm[13], pm[9], pm[5], pm[1]);
  const __m256d col2 = _mm256_set_pd(pm[14], pm[10], pm[6], pm[2]);
  const __m256d col3 = _mm256_set_pd(pm[15], pm[11], pm[7], pm[3]);
  for (std::size_t k = 0; k < count; ++k) {
    const __m256d c = _mm256_loadu_pd(child + k * 4);
    const __m256d s01 =
        _mm256_add_pd(_mm256_mul_pd(col0, _mm256_permute4x64_pd(c, 0x00)),
                      _mm256_mul_pd(col1, _mm256_permute4x64_pd(c, 0x55)));
    const __m256d s012 = _mm256_add_pd(
        s01, _mm256_mul_pd(col2, _mm256_permute4x64_pd(c, 0xAA)));
    const __m256d sum = _mm256_add_pd(
        s012, _mm256_mul_pd(col3, _mm256_permute4x64_pd(c, 0xFF)));
    if constexpr (kAssign) {
      _mm256_storeu_pd(node + k * 4, sum);
    } else {
      _mm256_storeu_pd(node + k * 4,
                       _mm256_mul_pd(_mm256_loadu_pd(node + k * 4), sum));
    }
  }
}

void combine_avx2(const double* pm, const double* child, double* node,
                  std::size_t count, bool assign) {
  if (assign) {
    combine_body_avx2<true>(pm, child, node, count);
  } else {
    combine_body_avx2<false>(pm, child, node, count);
  }
}

}  // namespace

PartialsCombineFn partials_combine_avx2() { return &combine_avx2; }

}  // namespace hdcs::phylo

#else  // !defined(__AVX2__)

namespace hdcs::phylo {

PartialsCombineFn partials_combine_avx2() { return partials_combine_portable(); }

}  // namespace hdcs::phylo

#endif
