#include "phylo/simulate.hpp"

#include <map>

#include "util/error.hpp"

namespace hdcs::phylo {

Tree random_tree(Rng& rng, const TreeSimSpec& spec) {
  if (spec.taxa < 3) throw InputError("random_tree: need >= 3 taxa");
  auto bl = [&] { return std::max(1e-4, rng.exponential(spec.mean_branch_length)); };

  Tree tree = Tree::three_taxon(spec.name_prefix + "0", spec.name_prefix + "1",
                                spec.name_prefix + "2", 0.05);
  for (int i = 0; i < 3; ++i) {
    tree.set_branch_length(i + 1, bl());
  }
  for (int i = 3; i < spec.taxa; ++i) {
    auto edges = tree.edge_nodes();
    int edge = edges[rng.next_below(edges.size())];
    tree.insert_leaf_on_edge(edge, spec.name_prefix + std::to_string(i), bl(),
                             rng.uniform(0.25, 0.75));
  }
  return tree;
}

Alignment simulate_alignment(Rng& rng, const Tree& tree, const SubstModel& model,
                             const RateModel& rates, const SeqSimSpec& spec) {
  if (spec.sites == 0) throw InputError("simulate_alignment: zero sites");
  const Vec4& pi = model.pi();

  // Draw a rate category per site.
  std::vector<std::size_t> site_cat(spec.sites);
  {
    std::vector<double> probs = rates.probs;
    for (std::size_t s = 0; s < spec.sites; ++s) {
      site_cat[s] = rng.categorical(probs);
    }
  }

  // Root states from the stationary distribution.
  std::vector<int> root_states(spec.sites);
  for (std::size_t s = 0; s < spec.sites; ++s) {
    root_states[s] = static_cast<int>(
        rng.categorical({pi[0], pi[1], pi[2], pi[3]}));
  }

  // Walk the tree top-down, mutating states along each branch.
  std::map<int, std::vector<int>> states;
  states[tree.root()] = root_states;

  auto order = tree.postorder();  // children before parents
  // Need parents before children: reverse postorder.
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    int node = *it;
    if (node == tree.root()) continue;
    const auto& parent_states = states.at(tree.parent(node));
    double t = tree.branch_length(node);

    // Transition matrices per category for this branch.
    std::vector<Matrix4> pms;
    pms.reserve(rates.category_count());
    for (double r : rates.rates) pms.push_back(model.transition_probs(t * r));

    std::vector<int> my_states(spec.sites);
    for (std::size_t s = 0; s < spec.sites; ++s) {
      const Matrix4& pm = pms[site_cat[s]];
      int from = parent_states[s];
      my_states[s] = static_cast<int>(rng.categorical(
          {pm(from, 0), pm(from, 1), pm(from, 2), pm(from, 3)}));
    }
    states[node] = std::move(my_states);
  }

  Alignment aln;
  for (int leaf : tree.leaves()) {
    aln.names.push_back(tree.at(leaf).name);
    std::string row;
    row.reserve(spec.sites);
    for (int s : states.at(leaf)) row.push_back(bio::dna_base(s));
    aln.rows.push_back(std::move(row));
  }
  aln.validate();
  return aln;
}

}  // namespace hdcs::phylo
