#include "phylo/likelihood.hpp"

#include <cmath>

#include "phylo/optimize.hpp"
#include "phylo/partials_kernels.hpp"
#include "util/error.hpp"
#include "util/simd.hpp"

namespace hdcs::phylo {

LikelihoodEngine::LikelihoodEngine(PatternAlignment alignment,
                                   std::shared_ptr<const SubstModel> model,
                                   RateModel rates)
    : alignment_(std::move(alignment)), model_(std::move(model)),
      rates_(std::move(rates)) {
  if (!model_) throw InputError("LikelihoodEngine: null model");
  if (alignment_.patterns == 0) throw InputError("LikelihoodEngine: empty alignment");
  if (rates_.rates.empty() || rates_.rates.size() != rates_.probs.size()) {
    throw InputError("LikelihoodEngine: malformed rate model");
  }
}

double LikelihoodEngine::cost_per_eval(int leaf_count) const {
  // ~ internal nodes x patterns x categories x 4 states x 8 flops.
  double nodes = std::max(1, leaf_count - 1);
  return nodes * static_cast<double>(alignment_.patterns) *
         static_cast<double>(rates_.category_count()) * 32.0;
}

double LikelihoodEngine::log_likelihood(const Tree& tree) {
  evals_ += 1;
  const std::size_t P = alignment_.patterns;
  const std::size_t C = rates_.category_count();
  const std::size_t stride = P * C * 4;
  const auto n_nodes = static_cast<std::size_t>(tree.node_count());
  const PartialsCombineFn combine = partials_combine_for(simd_tier());

  // Every node's cells are fully written below (leaves store all four
  // states, the first child's combine assigns), so the buffer only needs
  // to be large enough — no per-eval zeroing of n_nodes*stride doubles.
  partials_.resize(n_nodes * stride);
  scale_log_.assign(P, 0.0);
  leaf_row_.assign(n_nodes, -1);
  for (int leaf : tree.leaves()) {
    leaf_row_[static_cast<std::size_t>(leaf)] =
        static_cast<int>(alignment_.taxon_index(tree.at(leaf).name));
  }

  // Per-(category, child) transition matrices are recomputed at each node;
  // cache per branch length within this eval is unnecessary because each
  // branch is visited once.
  auto order = tree.postorder();
  for (int node : order) {
    auto ni = static_cast<std::size_t>(node);
    double* np = &partials_[ni * stride];

    if (tree.is_leaf(node)) {
      int row = leaf_row_[ni];
      for (std::size_t c = 0; c < C; ++c) {
        double* cat_base = np + c * P * 4;
        for (std::size_t p = 0; p < P; ++p) {
          std::uint8_t code = alignment_.code(p, static_cast<std::size_t>(row));
          double* cell = cat_base + p * 4;
          if (code == kMissing) {
            cell[0] = cell[1] = cell[2] = cell[3] = 1.0;
          } else {
            cell[0] = cell[1] = cell[2] = cell[3] = 0.0;
            cell[code] = 1.0;
          }
        }
      }
      continue;
    }

    // Internal: product over children of (P_child^T . child partials).
    // Patterns of one category are contiguous ([cat][pattern][state]
    // layout), so each combine call is one long unit-stride sweep through
    // the dispatched kernel (partials_kernels.hpp).
    bool first = true;
    for (int child : tree.at(node).children) {
      auto ci = static_cast<std::size_t>(child);
      const double* cp = &partials_[ci * stride];
      double t = tree.branch_length(child);

      for (std::size_t c = 0; c < C; ++c) {
        Matrix4 pm = model_->transition_probs(t * rates_.rates[c]);
        combine(&pm.m[0][0], cp + c * P * 4, np + c * P * 4, P, first);
      }
      first = false;
    }

    // Rescale patterns drifting toward underflow.
    for (std::size_t p = 0; p < P; ++p) {
      double maxv = 0;
      for (std::size_t c = 0; c < C; ++c) {
        const double* cell = np + (c * P + p) * 4;
        for (int i = 0; i < 4; ++i) maxv = std::max(maxv, cell[i]);
      }
      if (maxv > 0 && maxv < 1e-100) {
        double inv = 1.0 / maxv;
        for (std::size_t c = 0; c < C; ++c) {
          double* cell = np + (c * P + p) * 4;
          for (int i = 0; i < 4; ++i) cell[i] *= inv;
        }
        scale_log_[p] += std::log(maxv);
      }
    }
  }

  const auto root = static_cast<std::size_t>(tree.root());
  const double* rp = &partials_[root * stride];
  const Vec4& pi = model_->pi();
  double log_l = 0;
  for (std::size_t p = 0; p < P; ++p) {
    double site = 0;
    for (std::size_t c = 0; c < C; ++c) {
      const double* cell = rp + (c * P + p) * 4;
      double cat = pi[0] * cell[0] + pi[1] * cell[1] + pi[2] * cell[2] +
                   pi[3] * cell[3];
      site += rates_.probs[c] * cat;
    }
    if (site <= 0) {
      // Fully scaled-out pattern: fall back to the scale log alone.
      log_l += alignment_.weights[p] * (scale_log_[p] + std::log(1e-300));
    } else {
      log_l += alignment_.weights[p] * (std::log(site) + scale_log_[p]);
    }
  }
  return log_l;
}

double LikelihoodEngine::optimize_branch(Tree& tree, int node, double tol) {
  if (node == tree.root()) throw InputError("optimize_branch: root has no branch");
  auto objective = [&](double bl) {
    tree.set_branch_length(node, bl);
    return -log_likelihood(tree);
  };
  auto res = brent_minimize(objective, kMinBranch, kMaxBranch, tol);
  tree.set_branch_length(node, res.x);
  return -res.value;
}

double LikelihoodEngine::optimize_branches(Tree& tree, std::span<const int> nodes,
                                           int passes, double tol) {
  double best = log_likelihood(tree);
  for (int pass = 0; pass < passes; ++pass) {
    for (int node : nodes) best = optimize_branch(tree, node, tol);
  }
  return best;
}

double LikelihoodEngine::optimize_all_branches(Tree& tree, int passes, double tol) {
  auto edges = tree.edge_nodes();
  return optimize_branches(tree, edges, passes, tol);
}

}  // namespace hdcs::phylo
