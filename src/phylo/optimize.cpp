#include "phylo/optimize.hpp"

#include <cmath>
#include <vector>

#include "util/error.hpp"

namespace hdcs::phylo {

BrentResult brent_minimize(const std::function<double(double)>& f, double lo,
                           double hi, double tol, int max_iter) {
  if (!(lo < hi)) throw InputError("brent_minimize: lo must be < hi");
  const double gold = 0.3819660112501051;  // 2 - phi
  BrentResult res;

  double a = lo, b = hi;
  double x = a + gold * (b - a);
  double w = x, v = x;
  double fx = f(x);
  res.evaluations = 1;
  double fw = fx, fv = fx;
  double d = 0, e = 0;

  for (int iter = 0; iter < max_iter; ++iter) {
    double xm = 0.5 * (a + b);
    double tol1 = tol * std::fabs(x) + 1e-12;
    double tol2 = 2.0 * tol1;
    if (std::fabs(x - xm) <= tol2 - 0.5 * (b - a)) break;

    bool use_golden = true;
    if (std::fabs(e) > tol1) {
      // Parabolic fit through (x, fx), (w, fw), (v, fv).
      double r = (x - w) * (fx - fv);
      double q = (x - v) * (fx - fw);
      double p = (x - v) * q - (x - w) * r;
      q = 2.0 * (q - r);
      if (q > 0) p = -p;
      q = std::fabs(q);
      double e_old = e;
      e = d;
      if (std::fabs(p) < std::fabs(0.5 * q * e_old) && p > q * (a - x) &&
          p < q * (b - x)) {
        d = p / q;
        double u = x + d;
        if (u - a < tol2 || b - u < tol2) d = (xm >= x) ? tol1 : -tol1;
        use_golden = false;
      }
    }
    if (use_golden) {
      e = (x >= xm) ? a - x : b - x;
      d = gold * e;
    }

    double u = (std::fabs(d) >= tol1) ? x + d : x + (d >= 0 ? tol1 : -tol1);
    double fu = f(u);
    res.evaluations += 1;

    if (fu <= fx) {
      if (u >= x) {
        a = x;
      } else {
        b = x;
      }
      v = w;
      fv = fw;
      w = x;
      fw = fx;
      x = u;
      fx = fu;
    } else {
      if (u < x) {
        a = u;
      } else {
        b = u;
      }
      if (fu <= fw || w == x) {
        v = w;
        fv = fw;
        w = u;
        fw = fu;
      } else if (fu <= fv || v == x || v == w) {
        v = u;
        fv = fu;
      }
    }
  }
  res.x = x;
  res.value = fx;
  return res;
}

double log_gamma(double x) {
  // Lanczos approximation (g = 7, n = 9), good to ~1e-13 for x > 0.
  static const double coeffs[] = {
      0.99999999999980993,  676.5203681218851,   -1259.1392167224028,
      771.32342877765313,   -176.61502916214059, 12.507343278686905,
      -0.13857109526572012, 9.9843695780195716e-6, 1.5056327351493116e-7};
  if (x <= 0) throw InputError("log_gamma: x must be > 0");
  if (x < 0.5) {
    // Reflection: Gamma(x) Gamma(1-x) = pi / sin(pi x).
    return std::log(M_PI / std::sin(M_PI * x)) - log_gamma(1.0 - x);
  }
  x -= 1.0;
  double a = coeffs[0];
  double t = x + 7.5;
  for (int i = 1; i < 9; ++i) a += coeffs[i] / (x + i);
  return 0.5 * std::log(2.0 * M_PI) + (x + 0.5) * std::log(t) - t + std::log(a);
}

namespace {
/// Series expansion of P(a, x), valid for x < a + 1.
double gamma_p_series(double a, double x) {
  double sum = 1.0 / a;
  double term = sum;
  for (int n = 1; n < 500; ++n) {
    term *= x / (a + n);
    sum += term;
    if (std::fabs(term) < std::fabs(sum) * 1e-15) break;
  }
  return sum * std::exp(-x + a * std::log(x) - log_gamma(a));
}

/// Continued fraction for Q(a, x) = 1 - P(a, x), valid for x >= a + 1.
double gamma_q_contfrac(double a, double x) {
  const double tiny = 1e-300;
  double b = x + 1.0 - a;
  double c = 1.0 / tiny;
  double d = 1.0 / b;
  double h = d;
  for (int i = 1; i < 500; ++i) {
    double an = -i * (i - a);
    b += 2.0;
    d = an * d + b;
    if (std::fabs(d) < tiny) d = tiny;
    c = b + an / c;
    if (std::fabs(c) < tiny) c = tiny;
    d = 1.0 / d;
    double delta = d * c;
    h *= delta;
    if (std::fabs(delta - 1.0) < 1e-15) break;
  }
  return h * std::exp(-x + a * std::log(x) - log_gamma(a));
}
}  // namespace

double gamma_p(double a, double x) {
  if (a <= 0) throw InputError("gamma_p: a must be > 0");
  if (x < 0) throw InputError("gamma_p: x must be >= 0");
  if (x == 0) return 0;
  if (x < a + 1.0) return gamma_p_series(a, x);
  return 1.0 - gamma_q_contfrac(a, x);
}

double gamma_p_inverse(double a, double p) {
  if (p < 0 || p >= 1) throw InputError("gamma_p_inverse: p must be in [0,1)");
  if (p == 0) return 0;
  // Bracket then bisect (robust; speed is irrelevant here — called a
  // handful of times per model construction).
  double hi = std::max(a, 1.0);
  while (gamma_p(a, hi) < p) hi *= 2.0;
  double lo = 0;
  for (int i = 0; i < 200; ++i) {
    double mid = 0.5 * (lo + hi);
    if (gamma_p(a, mid) < p) {
      lo = mid;
    } else {
      hi = mid;
    }
    if (hi - lo < 1e-12 * (1.0 + hi)) break;
  }
  return 0.5 * (lo + hi);
}

std::vector<double> discrete_gamma_rates(double alpha, int categories) {
  if (alpha <= 0) throw InputError("discrete gamma: alpha must be > 0");
  if (categories < 1) throw InputError("discrete gamma: categories must be >= 1");
  if (categories == 1) return {1.0};

  // Cut points of Gamma(alpha, beta=alpha) (mean 1) at probabilities i/k.
  // Mean of each bin via the identity
  //   E[X | q_{i} < X < q_{i+1}] * (1/k) = [P(alpha+1, beta q_{i+1}) -
  //                                         P(alpha+1, beta q_i)] / beta
  // (Yang 1994, eq. 10).
  std::vector<double> rates(static_cast<std::size_t>(categories));
  const double beta = alpha;
  const auto k = static_cast<double>(categories);
  double prev_cut = 0;     // in x units (quantile of Gamma(alpha, beta))
  double prev_p1 = 0;      // P(alpha+1, beta * cut)
  for (int i = 0; i < categories; ++i) {
    double next_cut, next_p1;
    if (i == categories - 1) {
      next_p1 = 1.0;
      next_cut = 0;  // unused
    } else {
      double q = gamma_p_inverse(alpha, (i + 1) / k);  // quantile of Gamma(alpha,1)
      next_cut = q / beta;
      next_p1 = gamma_p(alpha + 1.0, q);
    }
    rates[static_cast<std::size_t>(i)] = (next_p1 - prev_p1) * k;
    prev_cut = next_cut;
    prev_p1 = next_p1;
  }
  (void)prev_cut;
  return rates;
}

}  // namespace hdcs::phylo
