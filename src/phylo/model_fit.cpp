#include "phylo/model_fit.hpp"

#include <algorithm>
#include <cmath>

#include "bio/sequence.hpp"
#include "phylo/likelihood.hpp"
#include "phylo/optimize.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"

namespace hdcs::phylo {

Vec4 empirical_base_frequencies(const Alignment& alignment) {
  alignment.validate();
  Vec4 counts{};
  for (const auto& row : alignment.rows) {
    for (char c : row) {
      int idx = bio::dna_index(c);
      if (idx < 4) counts[static_cast<std::size_t>(idx)] += 1;
    }
  }
  double total = counts[0] + counts[1] + counts[2] + counts[3];
  if (total <= 0) throw InputError("alignment has no unambiguous bases");
  Vec4 freqs;
  for (int i = 0; i < 4; ++i) {
    // Pseudo-count so degenerate alignments never produce zero
    // frequencies (which reversible models reject).
    freqs[static_cast<std::size_t>(i)] =
        (counts[static_cast<std::size_t>(i)] + 0.5) / (total + 2.0);
  }
  return freqs;
}

ScalarFit fit_scalar(const PatternAlignment& patterns, const Tree& tree,
                     const std::string& model_spec, const Config& base_params,
                     const std::string& param, double lo, double hi,
                     double tol) {
  if (!(lo < hi)) throw InputError("fit_scalar: lo must be < hi");
  int evals = 0;
  auto objective = [&](double x) {
    Config params = base_params;
    params.set(param, format_f64(x, 12));
    auto spec = ModelSpec::parse(model_spec, params);
    LikelihoodEngine engine(patterns, spec.model, spec.rates);
    ++evals;
    // Brent minimizes; likelihood is maximized.
    Tree copy = tree;
    return -engine.log_likelihood(copy);
  };
  auto res = brent_minimize(objective, lo, hi, tol);
  ScalarFit fit;
  fit.value = res.x;
  fit.log_likelihood = -res.value;
  fit.evaluations = evals;
  return fit;
}

int model_free_parameters(const std::string& spec, const Config& params) {
  auto parts = split(spec, '+');
  std::string base = to_upper(trim(parts[0]));
  int k = 0;
  bool unequal_freqs = params.has("basefreq");
  if (base == "JC69" || base == "JC") {
    k = 0;
  } else if (base == "F81") {
    k = unequal_freqs ? 3 : 0;
  } else if (base == "K80" || base == "K2P") {
    k = 1;
  } else if (base == "HKY85" || base == "HKY" || base == "F84") {
    k = 1 + (unequal_freqs ? 3 : 0);
  } else if (base == "TN93") {
    k = 2 + (unequal_freqs ? 3 : 0);
  } else if (base == "GTR") {
    k = 5 + (unequal_freqs ? 3 : 0);
  } else {
    throw InputError("unknown substitution model: " + base);
  }
  for (std::size_t i = 1; i < parts.size(); ++i) {
    std::string mod = to_upper(trim(parts[i]));
    if (!mod.empty() && mod[0] == 'G') {
      k += 1;  // alpha
    } else if (mod == "I") {
      k += 1;  // p_inv
    }
  }
  return k;
}

std::vector<ModelScore> rank_models(const PatternAlignment& patterns,
                                    const Tree& tree,
                                    const std::vector<std::string>& specs,
                                    const Config& params) {
  if (specs.empty()) throw InputError("rank_models: no candidate specs");
  double n_sites = patterns.site_count();
  std::vector<ModelScore> out;
  out.reserve(specs.size());
  for (const auto& spec_str : specs) {
    auto spec = ModelSpec::parse(spec_str, params);
    LikelihoodEngine engine(patterns, spec.model, spec.rates);
    Tree copy = tree;
    ModelScore score;
    score.spec = spec_str;
    score.log_likelihood = engine.log_likelihood(copy);
    score.free_parameters = model_free_parameters(spec_str, params);
    score.aic = 2.0 * score.free_parameters - 2.0 * score.log_likelihood;
    score.bic = score.free_parameters * std::log(n_sites) -
                2.0 * score.log_likelihood;
    out.push_back(std::move(score));
  }
  std::sort(out.begin(), out.end(), [](const ModelScore& a, const ModelScore& b) {
    if (a.aic != b.aic) return a.aic < b.aic;
    return a.spec < b.spec;
  });
  return out;
}

}  // namespace hdcs::phylo
