#include "phylo/matrix4.hpp"

#include <algorithm>
#include <cmath>

namespace hdcs::phylo {

Matrix4 Matrix4::identity() {
  Matrix4 out;
  for (int i = 0; i < 4; ++i) out(i, i) = 1.0;
  return out;
}

Matrix4 Matrix4::zero() { return Matrix4{}; }

Matrix4 operator*(const Matrix4& a, const Matrix4& b) {
  Matrix4 out;
  for (int i = 0; i < 4; ++i) {
    for (int k = 0; k < 4; ++k) {
      double aik = a(i, k);
      if (aik == 0.0) continue;
      for (int j = 0; j < 4; ++j) out(i, j) += aik * b(k, j);
    }
  }
  return out;
}

Matrix4 Matrix4::transpose() const {
  Matrix4 out;
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 4; ++j) out(i, j) = (*this)(j, i);
  }
  return out;
}

double Matrix4::max_abs_diff(const Matrix4& a, const Matrix4& b) {
  double d = 0;
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 4; ++j) d = std::max(d, std::fabs(a(i, j) - b(i, j)));
  }
  return d;
}

SymEigen sym_eigen(const Matrix4& input) {
  // Cyclic Jacobi: repeatedly zero the largest off-diagonal element with a
  // Givens rotation. Quadratic convergence; a handful of sweeps suffices.
  Matrix4 a = input;
  Matrix4 v = Matrix4::identity();

  for (int sweep = 0; sweep < 50; ++sweep) {
    double off = 0;
    for (int p = 0; p < 4; ++p) {
      for (int q = p + 1; q < 4; ++q) off += a(p, q) * a(p, q);
    }
    if (off < 1e-30) break;

    for (int p = 0; p < 4; ++p) {
      for (int q = p + 1; q < 4; ++q) {
        if (std::fabs(a(p, q)) < 1e-300) continue;
        double theta = (a(q, q) - a(p, p)) / (2.0 * a(p, q));
        double t = (theta >= 0 ? 1.0 : -1.0) /
                   (std::fabs(theta) + std::sqrt(theta * theta + 1.0));
        double c = 1.0 / std::sqrt(t * t + 1.0);
        double s = t * c;

        for (int k = 0; k < 4; ++k) {
          double akp = a(k, p), akq = a(k, q);
          a(k, p) = c * akp - s * akq;
          a(k, q) = s * akp + c * akq;
        }
        for (int k = 0; k < 4; ++k) {
          double apk = a(p, k), aqk = a(q, k);
          a(p, k) = c * apk - s * aqk;
          a(q, k) = s * apk + c * aqk;
        }
        for (int k = 0; k < 4; ++k) {
          double vkp = v(k, p), vkq = v(k, q);
          v(k, p) = c * vkp - s * vkq;
          v(k, q) = s * vkp + c * vkq;
        }
      }
    }
  }

  // Sort eigenpairs ascending by eigenvalue.
  std::array<int, 4> order = {0, 1, 2, 3};
  std::sort(order.begin(), order.end(),
            [&](int x, int y) { return a(x, x) < a(y, y); });
  SymEigen out;
  for (int i = 0; i < 4; ++i) {
    out.values[static_cast<std::size_t>(i)] = a(order[static_cast<std::size_t>(i)],
                                                order[static_cast<std::size_t>(i)]);
    for (int k = 0; k < 4; ++k) {
      out.vectors(k, i) = v(k, order[static_cast<std::size_t>(i)]);
    }
  }
  return out;
}

}  // namespace hdcs::phylo
