// Figure 1 reproduction: "Speedup achieved by DSEARCH over a network of 83
// semi-idle machines" (homogeneous PIII-1GHz lab).
//
// The paper's curve is near-linear to ~40 processors and visibly sub-linear
// beyond, ending around 70x at 83 machines. The bend comes from the
// deployment's shared resources: one PIII-500 server and one 100 Mbit/s
// link carrying every database chunk.
//
// Scaled world: simulating hour-long searches at full fidelity would mean
// executing hours of real alignment, so compute rate and link bandwidth are
// both divided by the same factor (~2500). All *ratios* that shape the
// curve — unit duration vs transfer time vs server occupancy — are
// preserved; see DESIGN.md.

#include <cstdio>
#include <vector>

#include "bio/seqgen.hpp"
#include "dsearch/dsearch.hpp"
#include "sim/sim_driver.hpp"
#include "util/logging.hpp"
#include "util/stopwatch.hpp"

using namespace hdcs;

namespace {

constexpr double kScale = 2500.0;  // world-scaling factor (see header note)

sim::SimConfig fig1_sim_config() {
  sim::SimConfig cfg;
  cfg.reference_ops_per_sec = 5e7 / kScale;        // PIII-1GHz, scaled
  cfg.network.bandwidth_bps = 100e6 / 8 / kScale;  // shared 100 Mbit/s, scaled
  cfg.network.latency_s = 0.5e-3;
  cfg.network.server_overhead_s = 1.2e-3;  // PIII-500 per-message cost
  cfg.network.server_per_byte_s = 2e-8;
  cfg.policy_spec = "adaptive:40";
  cfg.scheduler.lease_timeout = 600;
  cfg.scheduler.bounds.min_ops = 1e3;
  cfg.no_work_retry_s = 2.0;
  cfg.seed = 1;
  return cfg;
}

struct Workload {
  std::vector<bio::Sequence> queries;
  std::vector<bio::Sequence> database;
  dsearch::DSearchConfig config;
};

Workload make_workload() {
  Rng rng(1955);
  Workload w;
  w.queries = bio::make_queries(rng, 2, 300, bio::Alphabet::kProtein);
  bio::DatabaseSpec spec;
  spec.num_sequences = 8000;
  spec.mean_length = 150;
  spec.min_length = 40;
  spec.planted_homologs_per_query = 5;
  w.database = bio::make_database(rng, spec, w.queries);
  w.config.mode = bio::AlignMode::kLocal;  // Smith–Waterman, the sensitive one
  w.config.top_k = 10;
  return w;
}

/// Paper Fig. 1 anchors read off the plot (approximate).
double paper_speedup(int n) {
  struct Anchor {
    int n;
    double s;
  };
  static const Anchor anchors[] = {{1, 1},   {10, 9.7}, {20, 19},  {30, 28},
                                   {40, 36}, {50, 44},  {60, 52},  {70, 60},
                                   {83, 70}};
  for (std::size_t i = 1; i < std::size(anchors); ++i) {
    if (n <= anchors[i].n) {
      const auto& a = anchors[i - 1];
      const auto& b = anchors[i];
      double t = static_cast<double>(n - a.n) / (b.n - a.n);
      return a.s + t * (b.s - a.s);
    }
  }
  return anchors[std::size(anchors) - 1].s;
}

}  // namespace

int main() {
  set_log_level(LogLevel::kError);
  auto workload = make_workload();
  std::size_t db_residues = bio::total_residues(workload.database);
  std::size_t q_residues = bio::total_residues(workload.queries);
  double total_ops = static_cast<double>(db_residues) * q_residues;

  std::printf("=== Figure 1: DSEARCH speedup, 83 semi-idle PIII-1GHz lab ===\n");
  std::printf("database: %zu sequences, %zu residues; %zu queries; "
              "%.2e DP cells total (x%.0f scaled world)\n\n",
              workload.database.size(), db_residues, workload.queries.size(),
              total_ops, kScale);

  const std::vector<int> fleet_sizes = {1, 2, 4, 8, 16, 24, 32, 40, 48, 56, 64, 72, 83};

  dsearch::register_algorithm();
  auto cache = std::make_shared<sim::SimDriver::ResultCache>();
  dsearch::SearchResult reference;
  double t1 = 0;

  std::printf("%6s %14s %10s %10s %12s %12s\n", "procs", "makespan(s)",
              "speedup", "linear", "efficiency", "paper(~)");
  Stopwatch wall;
  bool monotone = true, exact = true;
  double prev_speedup = 0, speedup_at_32 = 0, speedup_at_83 = 0;

  for (int n : fleet_sizes) {
    sim::SimDriver driver(fig1_sim_config(), sim::lab_fleet(n, 0.85, 0.10));
    driver.set_shared_cache(cache);
    auto dm = std::make_shared<dsearch::DSearchDataManager>(
        workload.queries, workload.database, workload.config);
    driver.add_problem(dm);
    auto out = driver.run();

    if (n == 1) {
      t1 = out.makespan_s;
      reference = dm->result();
    } else if (dm->result() != reference) {
      exact = false;
    }
    double speedup = t1 / out.makespan_s;
    if (speedup < prev_speedup) monotone = false;
    prev_speedup = speedup;
    if (n == 32) speedup_at_32 = speedup;
    if (n == 83) speedup_at_83 = speedup;

    std::printf("%6d %14.0f %10.2f %10d %11.1f%% %12.1f\n", n, out.makespan_s,
                speedup, n, 100.0 * speedup / n, paper_speedup(n));
  }

  std::printf("\nwall-clock for the whole sweep: %.1f s\n", wall.seconds());
  std::printf("\nacceptance checks (DESIGN.md):\n");
  std::printf("  results identical across fleet sizes ........ %s\n",
              exact ? "PASS" : "FAIL");
  std::printf("  speedup monotone in processors ............... %s\n",
              monotone ? "PASS" : "FAIL");
  std::printf("  >= 0.9x linear at 32 procs .................... %s (%.2f)\n",
              speedup_at_32 >= 0.9 * 32 ? "PASS" : "FAIL", speedup_at_32);
  std::printf("  60..78x at 83 procs (paper: ~70x) ............. %s (%.2f)\n",
              speedup_at_83 >= 60 && speedup_at_83 <= 78 ? "PASS" : "FAIL",
              speedup_at_83);
  return 0;
}
