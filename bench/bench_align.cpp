// Microbenchmarks of the alignment kernels (DSEARCH's hot path), reported
// as DP cell updates per second. These calibrate the cost model: one
// WorkUnit "op" is one cell update, and reference_ops_per_sec in the
// simulator is a PIII-1GHz's cell rate (~5e7); a modern core is ~10-60x
// that, which is what these numbers show.
//
// Two entry points:
//   bench_align [gbench flags]     full google-benchmark suite
//   bench_align --smoke [--out f]  quick scalar-vs-batch comparison that
//                                  first asserts batch == scalar, then
//                                  writes BENCH_ALIGN.json (see
//                                  docs/KERNELS.md). Used by verify.sh.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <string_view>
#include <vector>

#include "bio/align.hpp"
#include "bio/align_batch.hpp"
#include "bio/seqgen.hpp"
#include "util/rng.hpp"
#include "util/simd.hpp"
#include "util/stopwatch.hpp"

using namespace hdcs;

namespace {

struct Inputs {
  std::string a;
  std::string b;
  bio::ScoringScheme scheme = bio::ScoringScheme::blosum62();
};

Inputs make_inputs(std::size_t len_a, std::size_t len_b, bool dna) {
  Rng rng(7);
  Inputs in;
  auto alphabet = dna ? bio::Alphabet::kDna : bio::Alphabet::kProtein;
  in.a = bio::random_residues(rng, len_a, alphabet);
  in.b = bio::random_residues(rng, len_b, alphabet);
  in.scheme = dna ? bio::ScoringScheme::dna() : bio::ScoringScheme::blosum62();
  return in;
}

void report_cells(benchmark::State& state, std::size_t la, std::size_t lb) {
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(la * lb));
}

void BM_NeedlemanWunsch(benchmark::State& state) {
  auto n = static_cast<std::size_t>(state.range(0));
  auto in = make_inputs(n, n, false);
  for (auto _ : state) {
    benchmark::DoNotOptimize(bio::nw_score(in.a, in.b, in.scheme));
  }
  report_cells(state, n, n);
}
BENCHMARK(BM_NeedlemanWunsch)->Arg(100)->Arg(300)->Arg(1000);

void BM_SmithWaterman(benchmark::State& state) {
  auto n = static_cast<std::size_t>(state.range(0));
  auto in = make_inputs(n, n, false);
  for (auto _ : state) {
    benchmark::DoNotOptimize(bio::sw_score(in.a, in.b, in.scheme));
  }
  report_cells(state, n, n);
}
BENCHMARK(BM_SmithWaterman)->Arg(100)->Arg(300)->Arg(1000);

void BM_SemiGlobal(benchmark::State& state) {
  auto n = static_cast<std::size_t>(state.range(0));
  auto in = make_inputs(n / 2, n, false);
  for (auto _ : state) {
    benchmark::DoNotOptimize(bio::semiglobal_score(in.a, in.b, in.scheme));
  }
  report_cells(state, n / 2, n);
}
BENCHMARK(BM_SemiGlobal)->Arg(200)->Arg(600);

void BM_BandedNw(benchmark::State& state) {
  auto n = static_cast<std::size_t>(state.range(0));
  auto band = static_cast<std::size_t>(state.range(1));
  auto in = make_inputs(n, n, false);
  for (auto _ : state) {
    benchmark::DoNotOptimize(bio::banded_nw_score(in.a, in.b, in.scheme, band));
  }
  // Banded work ~ n * (2*band+1) cells.
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n * (2 * band + 1)));
}
BENCHMARK(BM_BandedNw)->Args({1000, 8})->Args({1000, 32})->Args({1000, 128});

void BM_DnaKernel(benchmark::State& state) {
  auto n = static_cast<std::size_t>(state.range(0));
  auto in = make_inputs(n, n, true);
  for (auto _ : state) {
    benchmark::DoNotOptimize(bio::sw_score(in.a, in.b, in.scheme));
  }
  report_cells(state, n, n);
}
BENCHMARK(BM_DnaKernel)->Arg(500);

void BM_TracebackAlign(benchmark::State& state) {
  auto n = static_cast<std::size_t>(state.range(0));
  auto in = make_inputs(n, n, false);
  for (auto _ : state) {
    benchmark::DoNotOptimize(bio::nw_align(in.a, in.b, in.scheme));
  }
  report_cells(state, n, n);
}
BENCHMARK(BM_TracebackAlign)->Arg(100)->Arg(300);

void BM_BatchSmithWaterman(benchmark::State& state) {
  auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(7);
  auto scheme = bio::ScoringScheme::blosum62();
  auto query = bio::random_residues(rng, n, bio::Alphabet::kProtein);
  std::vector<std::string> db_store;
  for (int i = 0; i < 64; ++i) {
    db_store.push_back(bio::random_residues(rng, n, bio::Alphabet::kProtein));
  }
  std::vector<std::string_view> db(db_store.begin(), db_store.end());
  bio::QueryProfile profile(query, scheme);
  bio::AlignScratch scratch;
  for (auto _ : state) {
    benchmark::DoNotOptimize(bio::batch_align_scores(
        bio::AlignMode::kLocal, profile, db, scheme, 0, scratch));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n * n * db.size()));
}
BENCHMARK(BM_BatchSmithWaterman)->Arg(100)->Arg(300);

// ---------------------------------------------------------------------------
// --smoke: scalar vs batch on one representative workload, JSON artifact.
// ---------------------------------------------------------------------------

struct SmokeData {
  std::string query;
  std::vector<std::string> db_store;
  std::vector<std::string_view> db;
  bio::ScoringScheme scheme = bio::ScoringScheme::blosum62();
  std::size_t cells_per_pass = 0;  // semantic DP cells in one full db scan
};

SmokeData make_smoke_data() {
  Rng rng(7);
  SmokeData d;
  d.query = bio::random_residues(rng, 400, bio::Alphabet::kProtein);
  for (int i = 0; i < 64; ++i) {
    d.db_store.push_back(bio::random_residues(rng, 120 + rng.next_below(240),
                                              bio::Alphabet::kProtein));
    d.cells_per_pass += d.query.size() * d.db_store.back().size();
  }
  for (const auto& s : d.db_store) d.db.emplace_back(s);
  return d;
}

template <typename F>
double measure_cells_per_sec(F&& pass, std::size_t cells_per_pass) {
  pass();  // warm-up (first-touch of scratch buffers)
  hdcs::Stopwatch sw;
  std::size_t passes = 0;
  do {
    pass();
    ++passes;
  } while (sw.seconds() < 0.25);
  return static_cast<double>(passes) * static_cast<double>(cells_per_pass) /
         sw.seconds();
}

int run_smoke(const std::string& out_path) {
  std::printf("simd tier: %s (detected %s)\n", to_string(simd_tier()),
              to_string(simd_tier_detected()));
  auto d = make_smoke_data();
  bio::QueryProfile profile(d.query, d.scheme);
  bio::AlignScratch scratch;

  struct ModeSpec {
    const char* name;
    bio::AlignMode mode;
  };
  const ModeSpec modes[] = {{"sw", bio::AlignMode::kLocal},
                            {"nw", bio::AlignMode::kGlobal},
                            {"semiglobal", bio::AlignMode::kSemiGlobal}};

  // Equivalence guard: the speedup is meaningless if the kernels disagree.
  for (const auto& spec : modes) {
    auto batch =
        bio::batch_align_scores(spec.mode, profile, d.db, d.scheme, 0, scratch);
    for (std::size_t i = 0; i < d.db.size(); ++i) {
      auto scalar =
          bio::align_score(spec.mode, d.query, d.db[i], d.scheme);
      if (batch[i] != scalar) {
        std::fprintf(stderr,
                     "smoke FAILED: %s batch=%lld scalar=%lld (subject %zu)\n",
                     spec.name, static_cast<long long>(batch[i]),
                     static_cast<long long>(scalar), i);
        return 1;
      }
    }
  }

  std::string kernels_json, speedup_json;
  char buf[160];
  for (const auto& spec : modes) {
    double scalar_rate = measure_cells_per_sec(
        [&] {
          std::int64_t acc = 0;
          for (const auto& subject : d.db) {
            acc += bio::align_score(spec.mode, d.query, subject, d.scheme);
          }
          benchmark::DoNotOptimize(acc);
        },
        d.cells_per_pass);
    double batch_rate = measure_cells_per_sec(
        [&] {
          benchmark::DoNotOptimize(bio::batch_align_scores(
              spec.mode, profile, d.db, d.scheme, 0, scratch));
        },
        d.cells_per_pass);
    std::snprintf(buf, sizeof buf,
                  "    \"scalar_%s\": %.4g,\n    \"batch_%s\": %.4g,\n",
                  spec.name, scalar_rate, spec.name, batch_rate);
    kernels_json += buf;
    std::snprintf(buf, sizeof buf, "    \"%s\": %.3g,\n", spec.name,
                  batch_rate / scalar_rate);
    speedup_json += buf;
    std::printf("%-10s scalar %8.1f Mcells/s   batch %8.1f Mcells/s   %.2fx\n",
                spec.name, scalar_rate / 1e6, batch_rate / 1e6,
                batch_rate / scalar_rate);
  }
  if (!kernels_json.empty()) kernels_json.erase(kernels_json.size() - 2, 1);
  if (!speedup_json.empty()) speedup_json.erase(speedup_json.size() - 2, 1);

  std::string json;
  json += "{\n  \"schema\": 1,\n  \"bench\": \"bench_align --smoke\",\n";
  std::snprintf(buf, sizeof buf,
                "  \"config\": {\n    \"scheme\": \"blosum62\",\n"
                "    \"query_len\": %zu,\n    \"db_sequences\": %zu,\n"
                "    \"cells_per_pass\": %zu,\n    \"simd_tier\": \"%s\"\n  },\n",
                d.query.size(), d.db.size(), d.cells_per_pass,
                to_string(simd_tier()));
  json += buf;
  json += "  \"kernels_cells_per_sec\": {\n" + kernels_json + "  },\n";
  json += "  \"speedup_batch_over_scalar\": {\n" + speedup_json + "  }\n}\n";

  std::ofstream out(out_path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  out << json;
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      std::string out_path = "BENCH_ALIGN.json";
      for (int j = 1; j + 1 < argc; ++j) {
        if (std::strcmp(argv[j], "--out") == 0) out_path = argv[j + 1];
      }
      return run_smoke(out_path);
    }
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
