// Microbenchmarks of the alignment kernels (DSEARCH's hot path), reported
// as DP cell updates per second. These calibrate the cost model: one
// WorkUnit "op" is one cell update, and reference_ops_per_sec in the
// simulator is a PIII-1GHz's cell rate (~5e7); a modern core is ~10-60x
// that, which is what these numbers show.

#include <benchmark/benchmark.h>

#include "bio/align.hpp"
#include "bio/seqgen.hpp"
#include "util/rng.hpp"

using namespace hdcs;

namespace {

struct Inputs {
  std::string a;
  std::string b;
  bio::ScoringScheme scheme = bio::ScoringScheme::blosum62();
};

Inputs make_inputs(std::size_t len_a, std::size_t len_b, bool dna) {
  Rng rng(7);
  Inputs in;
  auto alphabet = dna ? bio::Alphabet::kDna : bio::Alphabet::kProtein;
  in.a = bio::random_residues(rng, len_a, alphabet);
  in.b = bio::random_residues(rng, len_b, alphabet);
  in.scheme = dna ? bio::ScoringScheme::dna() : bio::ScoringScheme::blosum62();
  return in;
}

void report_cells(benchmark::State& state, std::size_t la, std::size_t lb) {
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(la * lb));
}

void BM_NeedlemanWunsch(benchmark::State& state) {
  auto n = static_cast<std::size_t>(state.range(0));
  auto in = make_inputs(n, n, false);
  for (auto _ : state) {
    benchmark::DoNotOptimize(bio::nw_score(in.a, in.b, in.scheme));
  }
  report_cells(state, n, n);
}
BENCHMARK(BM_NeedlemanWunsch)->Arg(100)->Arg(300)->Arg(1000);

void BM_SmithWaterman(benchmark::State& state) {
  auto n = static_cast<std::size_t>(state.range(0));
  auto in = make_inputs(n, n, false);
  for (auto _ : state) {
    benchmark::DoNotOptimize(bio::sw_score(in.a, in.b, in.scheme));
  }
  report_cells(state, n, n);
}
BENCHMARK(BM_SmithWaterman)->Arg(100)->Arg(300)->Arg(1000);

void BM_SemiGlobal(benchmark::State& state) {
  auto n = static_cast<std::size_t>(state.range(0));
  auto in = make_inputs(n / 2, n, false);
  for (auto _ : state) {
    benchmark::DoNotOptimize(bio::semiglobal_score(in.a, in.b, in.scheme));
  }
  report_cells(state, n / 2, n);
}
BENCHMARK(BM_SemiGlobal)->Arg(200)->Arg(600);

void BM_BandedNw(benchmark::State& state) {
  auto n = static_cast<std::size_t>(state.range(0));
  auto band = static_cast<std::size_t>(state.range(1));
  auto in = make_inputs(n, n, false);
  for (auto _ : state) {
    benchmark::DoNotOptimize(bio::banded_nw_score(in.a, in.b, in.scheme, band));
  }
  // Banded work ~ n * (2*band+1) cells.
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n * (2 * band + 1)));
}
BENCHMARK(BM_BandedNw)->Args({1000, 8})->Args({1000, 32})->Args({1000, 128});

void BM_DnaKernel(benchmark::State& state) {
  auto n = static_cast<std::size_t>(state.range(0));
  auto in = make_inputs(n, n, true);
  for (auto _ : state) {
    benchmark::DoNotOptimize(bio::sw_score(in.a, in.b, in.scheme));
  }
  report_cells(state, n, n);
}
BENCHMARK(BM_DnaKernel)->Arg(500);

void BM_TracebackAlign(benchmark::State& state) {
  auto n = static_cast<std::size_t>(state.range(0));
  auto in = make_inputs(n, n, false);
  for (auto _ : state) {
    benchmark::DoNotOptimize(bio::nw_align(in.a, in.b, in.scheme));
  }
  report_cells(state, n, n);
}
BENCHMARK(BM_TracebackAlign)->Arg(100)->Arg(300);

}  // namespace

BENCHMARK_MAIN();
