// Microbenchmarks of the transport layer over loopback: framed round trips
// (the "RMI replacement" control path) and bulk blob transfers (the
// "ordinary sockets" data path of paper §2.2).

#include <benchmark/benchmark.h>

#include <thread>

#include "net/bulk.hpp"
#include "net/compress.hpp"
#include "net/message.hpp"
#include "net/socket.hpp"
#include "util/rng.hpp"

using namespace hdcs;
using namespace hdcs::net;

namespace {

struct Loop {
  TcpListener listener = TcpListener::bind(0);
  TcpStream client;
  TcpStream server;
  std::thread echo;

  /// Echo server: reads a frame, sends it back; empty Goodbye frame stops.
  Loop() {
    std::thread connector(
        [&] { client = TcpStream::connect("127.0.0.1", listener.port()); });
    server = std::move(*listener.accept(5000));
    connector.join();
    echo = std::thread([this] {
      try {
        for (;;) {
          Message m = read_message(server);
          if (m.type == MessageType::kGoodbye) return;
          write_message(server, m);
        }
      } catch (const Error&) {
      }
    });
  }

  ~Loop() {
    try {
      Message bye;
      bye.type = MessageType::kGoodbye;
      write_message(client, bye);
    } catch (const Error&) {
    }
    if (echo.joinable()) echo.join();
  }
};

void BM_MessageRoundTrip(benchmark::State& state) {
  Loop loop;
  auto payload_size = static_cast<std::size_t>(state.range(0));
  Message m;
  m.type = MessageType::kHeartbeat;
  m.payload.assign(payload_size, std::byte{0x5a});
  for (auto _ : state) {
    write_message(loop.client, m);
    Message reply = read_message(loop.client);
    benchmark::DoNotOptimize(reply.payload.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(payload_size) * 2);
}
BENCHMARK(BM_MessageRoundTrip)->Arg(0)->Arg(256)->Arg(4096)->Arg(65536);

void BM_BulkTransfer(benchmark::State& state) {
  auto size = static_cast<std::size_t>(state.range(0));
  Rng rng(1);
  std::vector<std::byte> blob(size);
  for (auto& b : blob) b = static_cast<std::byte>(rng.next_u64());

  TcpListener listener = TcpListener::bind(0);
  TcpStream client;
  std::thread connector(
      [&] { client = TcpStream::connect("127.0.0.1", listener.port()); });
  TcpStream server = std::move(*listener.accept(5000));
  connector.join();

  for (auto _ : state) {
    std::thread sender([&] { send_blob(client, blob); });
    auto received = recv_blob(server);
    sender.join();
    benchmark::DoNotOptimize(received.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(size));
}
BENCHMARK(BM_BulkTransfer)->Arg(64 << 10)->Arg(1 << 20)->Arg(8 << 20);

/// Blob bytes with a controllable compression ratio: entropy 0 = one
/// repeated motif (FASTA-like redundancy), 1 = uniform random residues.
std::vector<std::byte> mixed_blob(std::size_t size, double entropy) {
  Rng rng(7);
  static constexpr char kMotif[] = "MKTAYIAKQRQISFVKSHFSRQLEERLGLIEVQ";
  std::vector<std::byte> blob(size);
  for (std::size_t i = 0; i < size; ++i) {
    bool random = rng.next_double() < entropy;
    blob[i] = static_cast<std::byte>(
        random ? rng.next_u64() & 0xff : kMotif[i % (sizeof kMotif - 1)]);
  }
  return blob;
}

/// The v4 data path (header + optional LZ + chunks) on the same loopback
/// workload as BM_BulkTransfer; range(1) is entropy in percent, so the
/// compressible and incompressible cases are separate timing series.
void BM_BulkTransferV4(benchmark::State& state) {
  auto size = static_cast<std::size_t>(state.range(0));
  auto blob = mixed_blob(size, static_cast<double>(state.range(1)) / 100.0);

  TcpListener listener = TcpListener::bind(0);
  TcpStream client;
  std::thread connector(
      [&] { client = TcpStream::connect("127.0.0.1", listener.port()); });
  TcpStream server = std::move(*listener.accept(5000));
  connector.join();

  std::uint64_t wire = 0;
  for (auto _ : state) {
    BlobWireInfo info;
    std::thread sender([&] { info = send_blob_v4(client, blob); });
    auto received = recv_blob_v4(server);
    sender.join();
    wire += info.wire_bytes;
    benchmark::DoNotOptimize(received.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(size));
  state.counters["wire_ratio"] =
      state.iterations()
          ? static_cast<double>(wire) /
                (static_cast<double>(state.iterations()) *
                 static_cast<double>(size))
          : 0;
}
BENCHMARK(BM_BulkTransferV4)
    ->Args({1 << 20, 0})
    ->Args({1 << 20, 100})
    ->Args({8 << 20, 0});

void BM_LzCompress(benchmark::State& state) {
  auto blob =
      mixed_blob(static_cast<std::size_t>(state.range(0)),
                 static_cast<double>(state.range(1)) / 100.0);
  for (auto _ : state) {
    auto packed = lz_compress(blob);
    benchmark::DoNotOptimize(packed);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_LzCompress)->Args({1 << 20, 0})->Args({1 << 20, 100});

void BM_LzDecompress(benchmark::State& state) {
  auto blob = mixed_blob(static_cast<std::size_t>(state.range(0)), 0.0);
  auto packed = lz_compress(blob);
  if (!packed) {
    state.SkipWithError("motif blob unexpectedly incompressible");
    return;
  }
  for (auto _ : state) {
    auto raw = lz_decompress(*packed, blob.size());
    benchmark::DoNotOptimize(raw.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_LzDecompress)->Arg(1 << 20);

void BM_Crc32(benchmark::State& state) {
  auto size = static_cast<std::size_t>(state.range(0));
  std::vector<std::byte> data(size, std::byte{0xab});
  for (auto _ : state) {
    benchmark::DoNotOptimize(crc32(data));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(size));
}
BENCHMARK(BM_Crc32)->Arg(4096)->Arg(1 << 20);

}  // namespace

BENCHMARK_MAIN();
