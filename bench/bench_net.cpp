// Microbenchmarks of the transport layer over loopback: framed round trips
// (the "RMI replacement" control path) and bulk blob transfers (the
// "ordinary sockets" data path of paper §2.2), plus the connection-storm
// harness gating the epoll server: N simulated donors multiplexed on one
// client-side event loop do hello + heartbeats + a request/submit round
// against a live Server, reporting joins/sec, heartbeat RTT p99 and the
// process's resident thread count (which must stay at the configured
// io-threads + worker-pool budget no matter how many donors connect).
//
// Standalone storm mode (the CI net-storm leg):
//   bench_net --storm 2000 [--heartbeats H] [--io-threads K] [--workers W]
//             [--out build/BENCH_NET.json]

#include <benchmark/benchmark.h>
#include <sys/epoll.h>
#include <sys/resource.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <deque>
#include <fstream>
#include <memory>
#include <thread>

#include "dist/server.hpp"
#include "dist/wire.hpp"
#include "net/bulk.hpp"
#include "net/compress.hpp"
#include "net/event_loop.hpp"
#include "net/frame_reader.hpp"
#include "net/message.hpp"
#include "net/socket.hpp"
#include "tests/toy_problem.hpp"
#include "util/rng.hpp"

using namespace hdcs;
using namespace hdcs::net;

namespace {

struct Loop {
  TcpListener listener = TcpListener::bind(0);
  TcpStream client;
  TcpStream server;
  std::thread echo;

  /// Echo server: reads a frame, sends it back; empty Goodbye frame stops.
  Loop() {
    std::thread connector(
        [&] { client = TcpStream::connect("127.0.0.1", listener.port()); });
    server = std::move(*listener.accept(5000));
    connector.join();
    echo = std::thread([this] {
      try {
        for (;;) {
          Message m = read_message(server);
          if (m.type == MessageType::kGoodbye) return;
          write_message(server, m);
        }
      } catch (const Error&) {
      }
    });
  }

  ~Loop() {
    try {
      Message bye;
      bye.type = MessageType::kGoodbye;
      write_message(client, bye);
    } catch (const Error&) {
    }
    if (echo.joinable()) echo.join();
  }
};

void BM_MessageRoundTrip(benchmark::State& state) {
  Loop loop;
  auto payload_size = static_cast<std::size_t>(state.range(0));
  Message m;
  m.type = MessageType::kHeartbeat;
  m.payload.assign(payload_size, std::byte{0x5a});
  for (auto _ : state) {
    write_message(loop.client, m);
    Message reply = read_message(loop.client);
    benchmark::DoNotOptimize(reply.payload.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(payload_size) * 2);
}
BENCHMARK(BM_MessageRoundTrip)->Arg(0)->Arg(256)->Arg(4096)->Arg(65536);

void BM_BulkTransfer(benchmark::State& state) {
  auto size = static_cast<std::size_t>(state.range(0));
  Rng rng(1);
  std::vector<std::byte> blob(size);
  for (auto& b : blob) b = static_cast<std::byte>(rng.next_u64());

  TcpListener listener = TcpListener::bind(0);
  TcpStream client;
  std::thread connector(
      [&] { client = TcpStream::connect("127.0.0.1", listener.port()); });
  TcpStream server = std::move(*listener.accept(5000));
  connector.join();

  for (auto _ : state) {
    std::thread sender([&] { send_blob(client, blob); });
    auto received = recv_blob(server);
    sender.join();
    benchmark::DoNotOptimize(received.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(size));
}
BENCHMARK(BM_BulkTransfer)->Arg(64 << 10)->Arg(1 << 20)->Arg(8 << 20);

/// Blob bytes with a controllable compression ratio: entropy 0 = one
/// repeated motif (FASTA-like redundancy), 1 = uniform random residues.
std::vector<std::byte> mixed_blob(std::size_t size, double entropy) {
  Rng rng(7);
  static constexpr char kMotif[] = "MKTAYIAKQRQISFVKSHFSRQLEERLGLIEVQ";
  std::vector<std::byte> blob(size);
  for (std::size_t i = 0; i < size; ++i) {
    bool random = rng.next_double() < entropy;
    blob[i] = static_cast<std::byte>(
        random ? rng.next_u64() & 0xff : kMotif[i % (sizeof kMotif - 1)]);
  }
  return blob;
}

/// The v4 data path (header + optional LZ + chunks) on the same loopback
/// workload as BM_BulkTransfer; range(1) is entropy in percent, so the
/// compressible and incompressible cases are separate timing series.
void BM_BulkTransferV4(benchmark::State& state) {
  auto size = static_cast<std::size_t>(state.range(0));
  auto blob = mixed_blob(size, static_cast<double>(state.range(1)) / 100.0);

  TcpListener listener = TcpListener::bind(0);
  TcpStream client;
  std::thread connector(
      [&] { client = TcpStream::connect("127.0.0.1", listener.port()); });
  TcpStream server = std::move(*listener.accept(5000));
  connector.join();

  std::uint64_t wire = 0;
  for (auto _ : state) {
    BlobWireInfo info;
    std::thread sender([&] { info = send_blob_v4(client, blob); });
    auto received = recv_blob_v4(server);
    sender.join();
    wire += info.wire_bytes;
    benchmark::DoNotOptimize(received.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(size));
  state.counters["wire_ratio"] =
      state.iterations()
          ? static_cast<double>(wire) /
                (static_cast<double>(state.iterations()) *
                 static_cast<double>(size))
          : 0;
}
BENCHMARK(BM_BulkTransferV4)
    ->Args({1 << 20, 0})
    ->Args({1 << 20, 100})
    ->Args({8 << 20, 0});

void BM_LzCompress(benchmark::State& state) {
  auto blob =
      mixed_blob(static_cast<std::size_t>(state.range(0)),
                 static_cast<double>(state.range(1)) / 100.0);
  for (auto _ : state) {
    auto packed = lz_compress(blob);
    benchmark::DoNotOptimize(packed);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_LzCompress)->Args({1 << 20, 0})->Args({1 << 20, 100});

void BM_LzDecompress(benchmark::State& state) {
  auto blob = mixed_blob(static_cast<std::size_t>(state.range(0)), 0.0);
  auto packed = lz_compress(blob);
  if (!packed) {
    state.SkipWithError("motif blob unexpectedly incompressible");
    return;
  }
  for (auto _ : state) {
    auto raw = lz_decompress(*packed, blob.size());
    benchmark::DoNotOptimize(raw.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_LzDecompress)->Arg(1 << 20);

void BM_Crc32(benchmark::State& state) {
  auto size = static_cast<std::size_t>(state.range(0));
  std::vector<std::byte> data(size, std::byte{0xab});
  for (auto _ : state) {
    benchmark::DoNotOptimize(crc32(data));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(size));
}
BENCHMARK(BM_Crc32)->Arg(4096)->Arg(1 << 20);

// ---- Connection storm: N donors on one client-side event loop ----

struct StormOptions {
  std::size_t donors = 2000;
  int heartbeats = 3;
  int io_threads = 1;
  int worker_threads = 4;
  std::size_t connect_burst = 256;  // un-acked connects in flight at once
  double deadline_s = 300.0;
};

struct StormReport {
  std::size_t donors = 0;
  std::size_t joined = 0;
  std::size_t failed_connects = 0;
  std::size_t peak_concurrent = 0;
  double join_window_s = 0;
  double joins_per_sec = 0;
  double heartbeat_rtt_p99_ms = 0;
  std::uint64_t heartbeats = 0;
  std::uint64_t work_units = 0;
  int resident_threads = 0;  // peak "Threads:" from /proc/self/status
  bool timed_out = false;
};

int resident_threads_now() {
  std::ifstream status("/proc/self/status");
  std::string line;
  while (std::getline(status, line)) {
    if (line.rfind("Threads:", 0) == 0) {
      return std::atoi(line.c_str() + 8);
    }
  }
  return -1;
}

/// Raise RLIMIT_NOFILE to the hard cap and return how many donors fit:
/// each donor costs two descriptors (client end + server end, same
/// process) plus headroom for the server/loop plumbing.
std::size_t raise_fd_limit_and_clamp(std::size_t donors) {
  rlimit lim{};
  if (getrlimit(RLIMIT_NOFILE, &lim) == 0 && lim.rlim_cur < lim.rlim_max) {
    lim.rlim_cur = lim.rlim_max;
    setrlimit(RLIMIT_NOFILE, &lim);
    getrlimit(RLIMIT_NOFILE, &lim);
  }
  std::size_t budget = lim.rlim_cur > 128 ? (lim.rlim_cur - 128) / 2 : 1;
  if (donors > budget) {
    std::fprintf(stderr,
                 "storm: RLIMIT_NOFILE %llu only fits %zu donors, clamping "
                 "from %zu\n",
                 static_cast<unsigned long long>(lim.rlim_cur), budget, donors);
    return budget;
  }
  return donors;
}

class Storm {
 public:
  explicit Storm(const StormOptions& opt) : opt_(opt) {}

  StormReport run() {
    using Clock = std::chrono::steady_clock;
    test::register_toy_algorithm();
    dist::ServerConfig cfg;
    cfg.scheduler.lease_timeout = 600.0;
    cfg.scheduler.bounds.min_ops = 1000;
    cfg.scheduler.bounds.max_ops = 20000;  // keep units tiny: the storm
    cfg.policy_spec = "adaptive:0.05";     // measures I/O, not toy_f sums
    cfg.heartbeat_interval_s = 600.0;  // donors drive their own cadence
    cfg.io_threads = opt_.io_threads;
    cfg.worker_threads = opt_.worker_threads;
    dist::Server server(cfg);
    server.start();
    server.submit_problem(
        std::make_shared<test::ToySumDataManager>(1ull << 40));
    port_ = server.port();

    donors_.resize(opt_.donors);
    for (std::size_t i = 0; i < donors_.size(); ++i) {
      donors_[i] = std::make_unique<Donor>();
      donors_[i]->index = i;
    }
    start_ = Clock::now();
    deadline_ = start_ + std::chrono::duration_cast<Clock::duration>(
                             std::chrono::duration<double>(opt_.deadline_s));
    rtts_ms_.reserve(opt_.donors * static_cast<std::size_t>(opt_.heartbeats));

    loop_.add_periodic(0.02, [this] { launch_more(); });
    loop_.add_periodic(0.5, [this] {
      report_.resident_threads =
          std::max(report_.resident_threads, resident_threads_now());
      if (Clock::now() > deadline_) {
        report_.timed_out = true;
        loop_.stop();
      }
    });
    loop_.post([this] { launch_more(); });
    loop_.run();  // the bench thread IS the donor-side loop

    report_.donors = opt_.donors;
    report_.joined = joined_;
    report_.failed_connects = failed_;
    report_.heartbeats = rtts_ms_.size();
    report_.join_window_s = join_window_s_;
    report_.joins_per_sec =
        join_window_s_ > 0 ? static_cast<double>(joined_) / join_window_s_ : 0;
    if (!rtts_ms_.empty()) {
      std::sort(rtts_ms_.begin(), rtts_ms_.end());
      report_.heartbeat_rtt_p99_ms =
          rtts_ms_[std::min(rtts_ms_.size() - 1, rtts_ms_.size() * 99 / 100)];
    }
    report_.resident_threads =
        std::max(report_.resident_threads, resident_threads_now());
    server.stop();
    return report_;
  }

 private:
  using Clock = std::chrono::steady_clock;

  struct Donor {
    enum class Phase { kUnstarted, kConnecting, kActive, kClosed };
    Phase phase = Phase::kUnstarted;
    net::TcpStream stream;
    net::FrameReader reader;
    std::vector<std::byte> out;  // pending unsent bytes
    std::size_t out_off = 0;
    dist::ClientId id = 0;
    int heartbeats_left = 0;
    int connect_attempts = 0;
    bool joined = false;
    bool idle = false;  // finished its script, waiting for the last join
    std::uint64_t corr = 1;
    Clock::time_point hb_sent;
    std::size_t index = 0;
  };

  void launch_more() {
    while (launched_ < donors_.size() &&
           launched_ - joined_ - failed_ < opt_.connect_burst) {
      launch(*donors_[launched_]);
      ++launched_;
    }
  }

  void launch(Donor& d) {
    try {
      d.stream = net::TcpStream::connect_nonblocking("127.0.0.1", port_);
    } catch (const hdcs::Error&) {
      fail(d);
      return;
    }
    ++d.connect_attempts;
    d.phase = Donor::Phase::kConnecting;
    d.heartbeats_left = opt_.heartbeats;
    Donor* p = &d;
    loop_.add_fd(d.stream.fd(), EPOLLOUT,
                 [this, p](std::uint32_t ev) { event(*p, ev); });
  }

  void fail(Donor& d) {
    if (d.stream.valid()) {
      loop_.remove_fd(d.stream.fd());
      d.stream.close();
    }
    if (d.connect_attempts < 5) {  // listen-backlog overflow: try again
      d.phase = Donor::Phase::kUnstarted;
      launch(d);
      return;
    }
    d.phase = Donor::Phase::kClosed;
    ++failed_;
    maybe_all_joined();
    finish(d);
  }

  /// Every donor has either joined or permanently failed: stamp the join
  /// window and let idle donors (concurrency holders) say goodbye.
  void maybe_all_joined() {
    if (joined_ + failed_ != donors_.size()) return;
    if (join_window_s_ == 0) {
      join_window_s_ =
          std::chrono::duration<double>(Clock::now() - start_).count();
    }
    release_idlers();
  }

  void close_donor(Donor& d) {
    if (d.stream.valid()) {
      loop_.remove_fd(d.stream.fd());
      d.stream.close();
    }
    d.phase = Donor::Phase::kClosed;
    finish(d);
  }

  void finish(Donor&) {
    ++done_;
    if (done_ == donors_.size()) loop_.stop();
  }

  void event(Donor& d, std::uint32_t ev) {
    try {
      if (d.phase == Donor::Phase::kConnecting) {
        if (int err = d.stream.socket_error(); err != 0) {
          fail(d);
          return;
        }
        d.phase = Donor::Phase::kActive;
        open_now_ += 1;
        report_.peak_concurrent = std::max(report_.peak_concurrent, open_now_);
        dist::HelloPayload hello;
        hello.client_name = "storm-" + std::to_string(d.index);
        hello.benchmark_ops_per_sec = 1e6;
        queue(d, dist::encode_hello(hello, d.corr++));
        flush(d);
        return;
      }
      if (ev & (EPOLLERR | EPOLLHUP)) {
        on_eof(d);
        return;
      }
      if (ev & EPOLLOUT) flush(d);
      if (ev & EPOLLIN) readable(d);
    } catch (const hdcs::Error&) {
      on_eof(d);
    }
  }

  void readable(Donor& d) {
    std::byte buf[4096];
    std::vector<net::Message> msgs;
    for (int round = 0; round < 16; ++round) {
      auto n = d.stream.recv_nb(buf);
      if (!n) break;  // EAGAIN
      if (*n == 0) {
        on_eof(d);
        return;
      }
      d.reader.feed(std::span(buf, *n), msgs);
    }
    for (auto& m : msgs) {
      on_message(d, m);
      if (d.phase == Donor::Phase::kClosed) return;
    }
    flush(d);
  }

  void on_eof(Donor& d) {
    if (d.phase == Donor::Phase::kActive) open_now_ -= 1;
    close_donor(d);
  }

  void on_message(Donor& d, const net::Message& m) {
    using net::MessageType;
    switch (m.type) {
      case MessageType::kHelloAck: {
        d.id = dist::decode_hello_ack(m).client_id;
        d.joined = true;
        ++joined_;
        maybe_all_joined();
        send_heartbeat(d);
        break;
      }
      case MessageType::kHeartbeatAck: {
        rtts_ms_.push_back(
            std::chrono::duration<double, std::milli>(Clock::now() - d.hb_sent)
                .count());
        if (--d.heartbeats_left > 0) {
          send_heartbeat(d);
        } else {
          queue(d, dist::encode_request_work(d.id, d.corr++));
        }
        break;
      }
      case MessageType::kWorkAssignment: {
        auto unit = dist::decode_work_assignment(m);
        ByteReader r(unit.payload);
        std::uint64_t begin = r.u64();
        std::uint64_t end = r.u64();
        std::uint64_t sum = 0;
        for (std::uint64_t i = begin; i < end; ++i) sum += test::toy_f(i);
        dist::ResultUnit result;
        result.problem_id = unit.problem_id;
        result.unit_id = unit.unit_id;
        result.stage = unit.stage;
        result.epoch = unit.epoch;
        ByteWriter w;
        w.u64(sum);
        result.payload = w.take();
        result.payload_crc = net::crc32(result.payload);
        ++report_.work_units;
        queue(d, dist::encode_submit_result(d.id, result, d.corr++));
        break;
      }
      case MessageType::kNoWorkAvailable:
      case MessageType::kResultAck:
      case MessageType::kRetryLater:
      case MessageType::kShutdown:
      case MessageType::kError:
        script_done(d);
        break;
      default:
        break;
    }
  }

  void send_heartbeat(Donor& d) {
    d.hb_sent = Clock::now();
    queue(d, dist::encode_heartbeat(d.id, d.corr++));
  }

  /// The donor finished its script. It stays connected (idle) until every
  /// donor has joined — the storm measures N *concurrent* connections, not
  /// N sequential ones — then says goodbye and waits for the server-side
  /// close.
  void script_done(Donor& d) {
    if (joined_ + failed_ >= donors_.size()) {
      say_goodbye(d);
    } else {
      d.idle = true;
    }
  }

  void release_idlers() {
    for (auto& dp : donors_) {
      if (dp->idle && dp->phase == Donor::Phase::kActive) {
        dp->idle = false;
        say_goodbye(*dp);
      }
    }
  }

  void say_goodbye(Donor& d) {
    queue(d, dist::encode_goodbye(d.id, d.corr++));
    flush(d);  // EOF from the server-side close ends the connection
  }

  void queue(Donor& d, const net::Message& m) {
    auto frame = net::encode_frame(m);
    d.out.insert(d.out.end(), frame.begin(), frame.end());
  }

  void flush(Donor& d) {
    while (d.out_off < d.out.size()) {
      auto n = d.stream.send_nb(std::span(d.out).subspan(d.out_off));
      if (!n) break;  // EAGAIN: EPOLLOUT stays armed below
      d.out_off += *n;
    }
    if (d.out_off >= d.out.size()) {
      d.out.clear();
      d.out_off = 0;
    }
    loop_.modify_fd(d.stream.fd(),
                    EPOLLIN | (d.out.empty() ? 0u : EPOLLOUT));
  }

  StormOptions opt_;
  StormReport report_;
  net::EventLoop loop_;
  std::vector<std::unique_ptr<Donor>> donors_;
  std::uint16_t port_ = 0;
  std::size_t launched_ = 0;
  std::size_t joined_ = 0;
  std::size_t failed_ = 0;
  std::size_t done_ = 0;
  std::size_t open_now_ = 0;
  double join_window_s_ = 0;
  std::vector<double> rtts_ms_;
  Clock::time_point start_;
  Clock::time_point deadline_;
};

StormReport run_storm(StormOptions opt) {
  opt.donors = raise_fd_limit_and_clamp(opt.donors);
  Storm storm(opt);
  return storm.run();
}

void BM_ConnectionStorm(benchmark::State& state) {
  StormOptions opt;
  opt.donors = static_cast<std::size_t>(state.range(0));
  opt.heartbeats = 2;
  for (auto _ : state) {
    auto rep = run_storm(opt);
    if (rep.timed_out || rep.joined < rep.donors) {
      state.SkipWithError("storm did not complete");
      return;
    }
    state.counters["joins_per_sec"] = rep.joins_per_sec;
    state.counters["rtt_p99_ms"] = rep.heartbeat_rtt_p99_ms;
    state.counters["resident_threads"] =
        static_cast<double>(rep.resident_threads);
  }
}
BENCHMARK(BM_ConnectionStorm)->Arg(512)->Iterations(1)->Unit(benchmark::kMillisecond);

int storm_main(int argc, char** argv) {
  StormOptions opt;
  std::string out_path;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s wants a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--storm") {
      opt.donors = static_cast<std::size_t>(std::atoll(next()));
    } else if (arg == "--heartbeats") {
      opt.heartbeats = std::atoi(next());
    } else if (arg == "--io-threads") {
      opt.io_threads = std::atoi(next());
    } else if (arg == "--workers") {
      opt.worker_threads = std::atoi(next());
    } else if (arg == "--out") {
      out_path = next();
    } else {
      std::fprintf(stderr, "unknown storm flag: %s\n", arg.c_str());
      return 2;
    }
  }
  auto rep = run_storm(opt);
  std::printf(
      "storm: %zu donors, %zu joined (%zu failed), peak %zu concurrent\n"
      "  joins/sec        %.1f (window %.2fs)\n"
      "  heartbeat p99    %.2f ms over %llu heartbeats\n"
      "  work units       %llu\n"
      "  resident threads %d (io=%d workers=%d)\n",
      rep.donors, rep.joined, rep.failed_connects, rep.peak_concurrent,
      rep.joins_per_sec, rep.join_window_s, rep.heartbeat_rtt_p99_ms,
      static_cast<unsigned long long>(rep.heartbeats),
      static_cast<unsigned long long>(rep.work_units), rep.resident_threads,
      opt.io_threads, opt.worker_threads);
  if (!out_path.empty()) {
    std::ofstream out(out_path);
    out << "{\n  \"schema\": \"hdcs-bench-net-v1\",\n  \"config\": {"
        << "\"donors\": " << rep.donors
        << ", \"heartbeats\": " << opt.heartbeats
        << ", \"io_threads\": " << opt.io_threads
        << ", \"worker_threads\": " << opt.worker_threads << "},\n"
        << "  \"storm\": {\n"
        << "    \"donors\": " << rep.donors << ",\n"
        << "    \"joined\": " << rep.joined << ",\n"
        << "    \"failed_connects\": " << rep.failed_connects << ",\n"
        << "    \"peak_concurrent\": " << rep.peak_concurrent << ",\n"
        << "    \"join_window_s\": " << rep.join_window_s << ",\n"
        << "    \"joins_per_sec\": " << rep.joins_per_sec << ",\n"
        << "    \"heartbeat_rtt_p99_ms\": " << rep.heartbeat_rtt_p99_ms
        << ",\n"
        << "    \"heartbeats\": " << rep.heartbeats << ",\n"
        << "    \"work_units\": " << rep.work_units << ",\n"
        << "    \"resident_threads\": " << rep.resident_threads << "\n"
        << "  }\n}\n";
  }
  bool ok = !rep.timed_out && rep.joined == rep.donors;
  if (!ok) std::fprintf(stderr, "storm FAILED to join every donor\n");
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--storm") == 0) return storm_main(argc, argv);
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
