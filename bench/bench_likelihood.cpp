// Microbenchmarks of the likelihood machinery (DPRml's hot path): full-tree
// log-likelihood evaluations and branch optimisations across substitution
// models and rate-category counts. These calibrate DPRml's cost model
// (pattern_cost x nodes x Brent evaluations).
//
// Two entry points:
//   bench_likelihood [gbench flags]     full google-benchmark suite
//   bench_likelihood --smoke [--out f]  asserts every SIMD dispatch tier
//                                       returns the bit-identical
//                                       log-likelihood, then times the
//                                       partials loop per tier and writes
//                                       BENCH_LIKELIHOOD.json (same schema
//                                       style as BENCH_ALIGN.json; gated
//                                       in CI by scripts/bench_gate.py).

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

#include "phylo/distance.hpp"
#include "phylo/likelihood.hpp"
#include "phylo/simulate.hpp"
#include "util/rng.hpp"
#include "util/simd.hpp"
#include "util/stopwatch.hpp"

using namespace hdcs;
using namespace hdcs::phylo;

namespace {

struct Case {
  Tree tree;
  PatternAlignment patterns;
  std::shared_ptr<const SubstModel> model;
  RateModel rates;
};

Case make_case(int taxa, std::size_t sites, const std::string& model_spec,
               int categories) {
  Rng rng(3);
  Case c;
  c.tree = random_tree(rng, {taxa, 0.1, "t"});
  Config params;
  params.set("kappa", "2.0");
  params.set("alpha", "0.5");
  auto spec = ModelSpec::parse(model_spec, params);
  c.model = spec.model;
  c.rates = categories > 1 ? RateModel::gamma(0.5, categories)
                           : RateModel::uniform();
  auto aln = simulate_alignment(rng, c.tree, *c.model, c.rates, {sites});
  c.patterns = compress(aln);
  return c;
}

void BM_LogLikelihood(benchmark::State& state) {
  auto taxa = static_cast<int>(state.range(0));
  auto cats = static_cast<int>(state.range(1));
  auto c = make_case(taxa, 500, "HKY85", cats);
  LikelihoodEngine engine(c.patterns, c.model, c.rates);
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.log_likelihood(c.tree));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(c.patterns.patterns) *
                          cats * (2 * taxa - 2));
  state.counters["patterns"] = static_cast<double>(c.patterns.patterns);
}
BENCHMARK(BM_LogLikelihood)
    ->Args({10, 1})
    ->Args({10, 4})
    ->Args({25, 1})
    ->Args({25, 4})
    ->Args({50, 4});

void BM_ModelComparison(benchmark::State& state) {
  static const char* kModels[] = {"JC69", "K80", "HKY85", "TN93", "GTR"};
  const char* model = kModels[state.range(0)];
  auto c = make_case(15, 500, model, 1);
  LikelihoodEngine engine(c.patterns, c.model, c.rates);
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.log_likelihood(c.tree));
  }
  state.SetLabel(model);
}
BENCHMARK(BM_ModelComparison)->DenseRange(0, 4);

void BM_OptimizeBranch(benchmark::State& state) {
  auto c = make_case(20, 500, "HKY85", 4);
  LikelihoodEngine engine(c.patterns, c.model, c.rates);
  auto edges = c.tree.edge_nodes();
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        engine.optimize_branch(c.tree, edges[i % edges.size()], 1e-3));
    ++i;
  }
  state.counters["ll_evals_total"] = static_cast<double>(engine.eval_count());
}
BENCHMARK(BM_OptimizeBranch);

void BM_TransitionProbs(benchmark::State& state) {
  auto model = SubstModel::gtr({0.3, 0.2, 0.2, 0.3}, {1.2, 3.0, 0.9, 1.1, 3.5, 1.0});
  double t = 0.05;
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.transition_probs(t));
    t += 1e-6;  // defeat value caching
  }
}
BENCHMARK(BM_TransitionProbs);

void BM_PatternCompression(benchmark::State& state) {
  Rng rng(5);
  auto tree = random_tree(rng, {30, 0.1, "t"});
  auto model = SubstModel::jc69();
  auto aln = simulate_alignment(rng, tree, model, RateModel::uniform(), {2000});
  for (auto _ : state) {
    benchmark::DoNotOptimize(compress(aln));
  }
}
BENCHMARK(BM_PatternCompression);

void BM_NeighborJoining(benchmark::State& state) {
  auto taxa = static_cast<int>(state.range(0));
  Rng rng(9);
  auto tree = random_tree(rng, {taxa, 0.1, "t"});
  auto model = SubstModel::jc69();
  auto aln = simulate_alignment(rng, tree, model, RateModel::uniform(), {500});
  for (auto _ : state) {
    benchmark::DoNotOptimize(nj_tree(aln));
  }
}
BENCHMARK(BM_NeighborJoining)->Arg(20)->Arg(50);

// ---------------------------------------------------------------------------
// --smoke: tier equivalence + scalar-vs-SIMD partials throughput, JSON
// artifact (BENCH_LIKELIHOOD.json).
// ---------------------------------------------------------------------------

double measure_evals_per_sec(LikelihoodEngine& engine, const Tree& tree) {
  benchmark::DoNotOptimize(engine.log_likelihood(tree));  // warm-up
  hdcs::Stopwatch sw;
  std::size_t evals = 0;
  do {
    benchmark::DoNotOptimize(engine.log_likelihood(tree));
    ++evals;
  } while (sw.seconds() < 0.25);
  return static_cast<double>(evals) / sw.seconds();
}

int run_smoke(const std::string& out_path) {
  constexpr int kTaxa = 30;
  constexpr std::size_t kSites = 1000;
  constexpr int kCats = 4;
  auto c = make_case(kTaxa, kSites, "HKY85", kCats);
  LikelihoodEngine engine(c.patterns, c.model, c.rates);

  // Equivalence guard: every available tier must produce the bit-identical
  // log-likelihood (the kernels share summation order and never use FMA).
  const SimdTier tiers[] = {SimdTier::kScalar, SimdTier::kSse2,
                            SimdTier::kAvx2};
  bool have_ref = false;
  double ref = 0;
  for (SimdTier t : tiers) {
    if (!simd_tier_available(t)) continue;
    ScopedSimdTier pin(t);
    double ll = engine.log_likelihood(c.tree);
    if (!have_ref) {
      ref = ll;
      have_ref = true;
    } else if (ll != ref) {
      std::fprintf(stderr, "smoke FAILED: tier %s log-likelihood %.17g != %.17g\n",
                   to_string(t), ll, ref);
      return 1;
    }
  }

  double scalar_rate, simd_rate;
  {
    ScopedSimdTier pin(SimdTier::kScalar);
    scalar_rate = measure_evals_per_sec(engine, c.tree);
  }
  const SimdTier best = simd_tier_detected();
  {
    ScopedSimdTier pin(best);
    simd_rate = measure_evals_per_sec(engine, c.tree);
  }
  std::printf("partials   scalar %8.1f evals/s   %s %8.1f evals/s   %.2fx\n",
              scalar_rate, to_string(best), simd_rate,
              simd_rate / scalar_rate);

  char buf[512];
  std::string json;
  json += "{\n  \"schema\": 1,\n  \"bench\": \"bench_likelihood --smoke\",\n";
  std::snprintf(buf, sizeof buf,
                "  \"config\": {\n    \"model\": \"HKY85\",\n"
                "    \"taxa\": %d,\n    \"sites\": %zu,\n"
                "    \"patterns\": %zu,\n    \"categories\": %d,\n"
                "    \"simd_tier\": \"%s\"\n  },\n",
                kTaxa, kSites, c.patterns.patterns, kCats, to_string(best));
  json += buf;
  std::snprintf(buf, sizeof buf,
                "  \"kernels_evals_per_sec\": {\n"
                "    \"partials_scalar\": %.4g,\n"
                "    \"partials_simd\": %.4g\n  },\n"
                "  \"speedup_simd_over_scalar\": {\n"
                "    \"partials\": %.3g\n  }\n}\n",
                scalar_rate, simd_rate, simd_rate / scalar_rate);
  json += buf;

  std::ofstream out(out_path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  out << json;
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      std::string out_path = "BENCH_LIKELIHOOD.json";
      for (int j = 1; j + 1 < argc; ++j) {
        if (std::strcmp(argv[j], "--out") == 0) out_path = argv[j + 1];
      }
      return run_smoke(out_path);
    }
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
