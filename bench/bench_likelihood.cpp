// Microbenchmarks of the likelihood machinery (DPRml's hot path): full-tree
// log-likelihood evaluations and branch optimisations across substitution
// models and rate-category counts. These calibrate DPRml's cost model
// (pattern_cost x nodes x Brent evaluations).

#include <benchmark/benchmark.h>

#include "phylo/distance.hpp"
#include "phylo/likelihood.hpp"
#include "phylo/simulate.hpp"
#include "util/rng.hpp"

using namespace hdcs;
using namespace hdcs::phylo;

namespace {

struct Case {
  Tree tree;
  PatternAlignment patterns;
  std::shared_ptr<const SubstModel> model;
  RateModel rates;
};

Case make_case(int taxa, std::size_t sites, const std::string& model_spec,
               int categories) {
  Rng rng(3);
  Case c;
  c.tree = random_tree(rng, {taxa, 0.1, "t"});
  Config params;
  params.set("kappa", "2.0");
  params.set("alpha", "0.5");
  auto spec = ModelSpec::parse(model_spec, params);
  c.model = spec.model;
  c.rates = categories > 1 ? RateModel::gamma(0.5, categories)
                           : RateModel::uniform();
  auto aln = simulate_alignment(rng, c.tree, *c.model, c.rates, {sites});
  c.patterns = compress(aln);
  return c;
}

void BM_LogLikelihood(benchmark::State& state) {
  auto taxa = static_cast<int>(state.range(0));
  auto cats = static_cast<int>(state.range(1));
  auto c = make_case(taxa, 500, "HKY85", cats);
  LikelihoodEngine engine(c.patterns, c.model, c.rates);
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.log_likelihood(c.tree));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(c.patterns.patterns) *
                          cats * (2 * taxa - 2));
  state.counters["patterns"] = static_cast<double>(c.patterns.patterns);
}
BENCHMARK(BM_LogLikelihood)
    ->Args({10, 1})
    ->Args({10, 4})
    ->Args({25, 1})
    ->Args({25, 4})
    ->Args({50, 4});

void BM_ModelComparison(benchmark::State& state) {
  static const char* kModels[] = {"JC69", "K80", "HKY85", "TN93", "GTR"};
  const char* model = kModels[state.range(0)];
  auto c = make_case(15, 500, model, 1);
  LikelihoodEngine engine(c.patterns, c.model, c.rates);
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.log_likelihood(c.tree));
  }
  state.SetLabel(model);
}
BENCHMARK(BM_ModelComparison)->DenseRange(0, 4);

void BM_OptimizeBranch(benchmark::State& state) {
  auto c = make_case(20, 500, "HKY85", 4);
  LikelihoodEngine engine(c.patterns, c.model, c.rates);
  auto edges = c.tree.edge_nodes();
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        engine.optimize_branch(c.tree, edges[i % edges.size()], 1e-3));
    ++i;
  }
  state.counters["ll_evals_total"] = static_cast<double>(engine.eval_count());
}
BENCHMARK(BM_OptimizeBranch);

void BM_TransitionProbs(benchmark::State& state) {
  auto model = SubstModel::gtr({0.3, 0.2, 0.2, 0.3}, {1.2, 3.0, 0.9, 1.1, 3.5, 1.0});
  double t = 0.05;
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.transition_probs(t));
    t += 1e-6;  // defeat value caching
  }
}
BENCHMARK(BM_TransitionProbs);

void BM_PatternCompression(benchmark::State& state) {
  Rng rng(5);
  auto tree = random_tree(rng, {30, 0.1, "t"});
  auto model = SubstModel::jc69();
  auto aln = simulate_alignment(rng, tree, model, RateModel::uniform(), {2000});
  for (auto _ : state) {
    benchmark::DoNotOptimize(compress(aln));
  }
}
BENCHMARK(BM_PatternCompression);

void BM_NeighborJoining(benchmark::State& state) {
  auto taxa = static_cast<int>(state.range(0));
  Rng rng(9);
  auto tree = random_tree(rng, {taxa, 0.1, "t"});
  auto model = SubstModel::jc69();
  auto aln = simulate_alignment(rng, tree, model, RateModel::uniform(), {500});
  for (auto _ : state) {
    benchmark::DoNotOptimize(nj_tree(aln));
  }
}
BENCHMARK(BM_NeighborJoining)->Arg(20)->Arg(50);

}  // namespace

BENCHMARK_MAIN();
