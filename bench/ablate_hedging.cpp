// Ablation D: end-game straggler hedging.
//
// On a semi-idle donor fleet the last few units of a problem can sit on a
// nearly-reclaimed machine while everyone else idles; waiting for the
// lease timeout wastes the whole fleet. With hedge_endgame the scheduler
// speculatively duplicates the oldest outstanding unit onto an idle donor
// and takes whichever result lands first. This bench measures the tail on
// a fleet with a few pathologically slow donors, hedging off vs. on.

#include <cstdio>

#include "bio/seqgen.hpp"
#include "dsearch/dsearch.hpp"
#include "sim/sim_driver.hpp"
#include "util/logging.hpp"

using namespace hdcs;

namespace {

constexpr double kScale = 2500.0;

sim::SimConfig make_config(bool hedging) {
  sim::SimConfig cfg;
  cfg.reference_ops_per_sec = 5e7 / kScale;
  cfg.network.bandwidth_bps = 100e6 / 8 / kScale;
  cfg.policy_spec = "adaptive:40";
  cfg.scheduler.lease_timeout = 3000;  // slow donors won't blow the lease
  cfg.scheduler.hedge_endgame = hedging;
  cfg.scheduler.bounds.min_ops = 100;
  cfg.seed = 5;
  return cfg;
}

std::vector<sim::MachineSpec> straggler_fleet() {
  // 24 healthy semi-idle donors + 4 donors whose owners basically never
  // leave (5% availability): classic cycle-scavenging stragglers.
  auto fleet = sim::lab_fleet(24, 0.85, 0.10);
  for (int i = 0; i < 4; ++i) {
    sim::MachineSpec m;
    m.name = "straggler-" + std::to_string(i);
    m.speed = 1.0;
    m.availability_mean = 0.05;
    m.availability_jitter = 0.0;
    fleet.push_back(m);
  }
  return fleet;
}

}  // namespace

int main() {
  set_log_level(LogLevel::kError);
  dsearch::register_algorithm();

  Rng rng(66);
  auto queries = bio::make_queries(rng, 2, 250, bio::Alphabet::kProtein);
  bio::DatabaseSpec spec;
  spec.num_sequences = 4000;
  spec.mean_length = 150;
  auto database = bio::make_database(rng, spec, queries);
  dsearch::DSearchConfig dcfg;
  dcfg.top_k = 10;

  std::printf("=== Ablation: end-game straggler hedging ===\n");
  std::printf("fleet: 24 semi-idle donors + 4 stragglers at 5%% availability; "
              "lease timeout deliberately long (3000 s)\n\n");

  auto cache = std::make_shared<sim::SimDriver::ResultCache>();
  double makespans[2] = {0, 0};
  std::printf("%-10s %14s %10s %12s %12s\n", "hedging", "makespan(s)", "hedged",
              "duplicates", "utilization");
  for (bool hedging : {false, true}) {
    sim::SimDriver driver(make_config(hedging), straggler_fleet());
    driver.set_shared_cache(cache);
    auto dm = std::make_shared<dsearch::DSearchDataManager>(queries, database,
                                                            dcfg);
    driver.add_problem(dm);
    auto out = driver.run();
    makespans[hedging ? 1 : 0] = out.makespan_s;
    std::printf("%-10s %14.0f %10llu %12llu %11.1f%%\n",
                hedging ? "on" : "off", out.makespan_s,
                static_cast<unsigned long long>(out.scheduler.units_hedged),
                static_cast<unsigned long long>(
                    out.scheduler.duplicate_results_dropped),
                100.0 * out.mean_utilization());
  }

  std::printf("\ntail reduction from hedging: %.1f%%\n",
              100.0 * (1.0 - makespans[1] / makespans[0]));
  std::printf("acceptance check: hedging does not hurt, and helps under "
              "stragglers ........ %s\n",
              makespans[1] <= makespans[0] * 1.02 ? "PASS" : "FAIL");
  return 0;
}
