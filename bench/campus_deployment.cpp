// Deployment-scale characterisation: the full ~264-CPU campus fleet of the
// paper (200 mixed desktops + the 32-node dual-PIII cluster) running both
// bioinformatics applications concurrently, with summary telemetry. This is
// the prose claim of §3 ("deployed ... on over 200 computers ... used to
// process bioinformatics ... applications") as a repeatable experiment.

#include <cstdio>
#include <map>

#include "bio/seqgen.hpp"
#include "dprml/dprml.hpp"
#include "dsearch/dsearch.hpp"
#include "phylo/simulate.hpp"
#include "sim/sim_driver.hpp"
#include "util/logging.hpp"

using namespace hdcs;

int main() {
  set_log_level(LogLevel::kError);
  dsearch::register_algorithm();
  dprml::register_algorithm();

  Rng rng(2005);
  auto fleet = sim::campus_fleet(rng, 200);

  sim::SimConfig cfg;
  cfg.reference_ops_per_sec = 5e7;
  cfg.network.bandwidth_bps = 100e6 / 8;
  cfg.policy_spec = "adaptive:15";
  cfg.scheduler.lease_timeout = 3600;
  cfg.scheduler.bounds.min_ops = 1e5;
  cfg.seed = 11;

  sim::SimDriver driver(cfg, fleet);

  // One big DSEARCH job (cost-magnified; see DESIGN.md on scaled worlds).
  Rng wl(6);
  auto queries = bio::make_queries(wl, 2, 200, bio::Alphabet::kProtein);
  bio::DatabaseSpec dbspec;
  dbspec.num_sequences = 6000;
  dbspec.mean_length = 150;
  auto database = bio::make_database(wl, dbspec, queries);
  dsearch::DSearchConfig dcfg;
  dcfg.top_k = 10;
  dcfg.cost_scale = 5000;
  auto search_dm =
      std::make_shared<dsearch::DSearchDataManager>(queries, database, dcfg);
  auto search_pid = driver.add_problem(search_dm);

  // Three DPRml instances on a 30-taxon alignment.
  auto tree = phylo::random_tree(wl, {30, 0.1, "t"});
  auto model = phylo::SubstModel::jc69();
  auto alignment = phylo::simulate_alignment(wl, tree, model,
                                             phylo::RateModel::uniform(), {150});
  std::vector<dist::ProblemId> tree_pids;
  for (int i = 0; i < 3; ++i) {
    dprml::DPRmlConfig pcfg;
    pcfg.model_spec = "JC69";
    pcfg.branch_tolerance = 2e-2;
    pcfg.refine_passes = 1;
    pcfg.order_seed = static_cast<std::uint64_t>(i + 1);
    tree_pids.push_back(driver.add_problem(
        std::make_shared<dprml::DPRmlDataManager>(alignment, pcfg)));
  }

  auto out = driver.run();

  std::printf("=== Campus deployment: %zu donor CPUs, 4 concurrent problems ===\n\n",
              out.machines.size());
  std::printf("%-28s %14s\n", "problem", "completed (s)");
  std::printf("%-28s %14.0f\n", "DSEARCH (2 queries, 6k seqs)",
              out.completion_time_s.at(search_pid));
  for (std::size_t i = 0; i < tree_pids.size(); ++i) {
    char label[64];
    std::snprintf(label, sizeof(label), "DPRml instance %zu (30 taxa)", i + 1);
    std::printf("%-28s %14.0f\n", label, out.completion_time_s.at(tree_pids[i]));
  }

  std::printf("\nscheduler: %llu units (%llu reissued), %llu messages, "
              "%.1f MB moved\n",
              static_cast<unsigned long long>(out.scheduler.units_issued),
              static_cast<unsigned long long>(out.scheduler.units_reissued),
              static_cast<unsigned long long>(out.messages),
              out.bytes_transferred / 1e6);
  std::printf("mean donor utilization: %.1f%%\n\n", 100.0 * out.mean_utilization());

  // Per-class totals: the heterogeneity story in one table.
  struct ClassStats {
    std::uint64_t units = 0;
    double busy = 0;
    int cpus = 0;
  };
  std::map<std::string, ClassStats> by_class;
  for (const auto& m : out.machines) {
    std::string cls = m.name.rfind("cluster", 0) == 0
                          ? "cluster-dual-piii"
                          : m.name.substr(0, m.name.rfind('-'));
    by_class[cls].units += m.units;
    by_class[cls].busy += m.busy_s;
    by_class[cls].cpus += 1;
  }
  std::printf("%-22s %6s %8s %12s %12s\n", "machine class", "cpus", "units",
              "busy (s)", "units/cpu");
  for (const auto& [cls, stats] : by_class) {
    std::printf("%-22s %6d %8llu %12.0f %12.1f\n", cls.c_str(), stats.cpus,
                static_cast<unsigned long long>(stats.units), stats.busy,
                static_cast<double>(stats.units) / stats.cpus);
  }

  // The adaptive scheduler sizes units to donor speed, so units/cpu stays
  // comparable across classes but *ops* follow capability: faster classes
  // must absorb more total work per CPU (busy time scaled by speed).
  double piv_per_cpu = by_class.count("desk-piv-2400")
                           ? by_class["desk-piv-2400"].units /
                                 double(by_class["desk-piv-2400"].cpus)
                           : 0;
  double pii_per_cpu = by_class.count("desk-pii-300")
                           ? by_class["desk-pii-300"].units /
                                 double(by_class["desk-pii-300"].cpus)
                           : 0;
  std::printf("\nacceptance check: every class contributed and PIV-2400 "
              "handled >= PII-300 units/cpu ........ %s\n",
              (piv_per_cpu >= pii_per_cpu && pii_per_cpu > 0) ? "PASS" : "FAIL");
  return 0;
}
