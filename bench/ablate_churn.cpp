// Ablation C: fault tolerance under donor churn.
//
// Cycle-scavenging donors come and go (owners reclaim their desktops). The
// system's answer is lease-based reissue: a unit not returned within the
// lease timeout goes back in the queue. This bench runs the same DSEARCH
// job on a stable fleet and on fleets where a growing fraction of donors
// crash mid-run (half of which later return), and reports the overhead vs
// the undisturbed run. Results must be identical in all cases.

#include <cstdio>
#include <vector>

#include "bio/seqgen.hpp"
#include "dsearch/dsearch.hpp"
#include "sim/sim_driver.hpp"
#include "util/logging.hpp"

using namespace hdcs;

namespace {

constexpr double kScale = 2500.0;

sim::SimConfig churn_config() {
  sim::SimConfig cfg;
  cfg.reference_ops_per_sec = 5e7 / kScale;
  cfg.network.bandwidth_bps = 100e6 / 8 / kScale;
  cfg.policy_spec = "adaptive:40";
  cfg.scheduler.lease_timeout = 120;  // aggressive reissue
  cfg.scheduler.bounds.min_ops = 100;
  cfg.seed = 4;
  return cfg;
}

struct Workload {
  std::vector<bio::Sequence> queries;
  std::vector<bio::Sequence> database;
  dsearch::DSearchConfig config;
};

Workload make_workload() {
  Rng rng(88);
  Workload w;
  w.queries = bio::make_queries(rng, 2, 250, bio::Alphabet::kProtein);
  bio::DatabaseSpec spec;
  spec.num_sequences = 4000;
  spec.mean_length = 150;
  w.database = bio::make_database(rng, spec, w.queries);
  w.config.top_k = 10;
  return w;
}

}  // namespace

int main() {
  set_log_level(LogLevel::kError);
  dsearch::register_algorithm();
  auto w = make_workload();
  auto cache = std::make_shared<sim::SimDriver::ResultCache>();

  std::printf("=== Ablation: donor churn and lease-based recovery ===\n");
  std::printf("fleet: 32 semi-idle PIII donors; crashing donors die at "
              "t=200s+, half rejoin 400s later\n\n");

  dsearch::SearchResult reference;
  double baseline = 0;
  bool all_exact = true;

  std::printf("%16s %14s %12s %14s %12s\n", "crashing donors", "makespan(s)",
              "reissued", "overhead", "utilization");
  for (int crashers : {0, 4, 8, 16}) {
    auto fleet = sim::lab_fleet(32, 0.85, 0.10);
    for (int i = 0; i < crashers; ++i) {
      fleet[static_cast<std::size_t>(i)].leave_time = 200.0 + 40.0 * i;
      fleet[static_cast<std::size_t>(i)].crash_on_leave = true;
      if (i % 2 == 0) {
        fleet[static_cast<std::size_t>(i)].rejoin_time =
            fleet[static_cast<std::size_t>(i)].leave_time + 400.0;
      }
    }
    sim::SimDriver driver(churn_config(), fleet);
    driver.set_shared_cache(cache);
    auto dm = std::make_shared<dsearch::DSearchDataManager>(w.queries, w.database,
                                                            w.config);
    driver.add_problem(dm);
    auto out = driver.run();

    if (crashers == 0) {
      baseline = out.makespan_s;
      reference = dm->result();
    } else if (dm->result() != reference) {
      all_exact = false;
    }
    std::printf("%16d %14.0f %12llu %13.1f%% %11.1f%%\n", crashers,
                out.makespan_s,
                static_cast<unsigned long long>(out.scheduler.units_reissued),
                100.0 * (out.makespan_s / baseline - 1.0),
                100.0 * out.mean_utilization());
  }

  std::printf("\nacceptance check: identical results under churn ........ %s\n",
              all_exact ? "PASS" : "FAIL");
  return 0;
}
