// Ablation A: the adaptive granularity claim.
//
// Paper §3.1: "The parallel granularity is dynamically controlled during
// each search to match the processing abilities of the current set of
// donor machines"; the strategy itself is the authors' companion paper
// [12]. This bench runs the same DSEARCH job on a deliberately lopsided
// fleet (fast PIV-class vs slow PII-class donors) under each policy:
//
//   fixed-small   — constant tiny units: per-unit overhead dominates
//   fixed-large   — constant huge units: slow donors become stragglers
//   guided        — guided self-scheduling (decreasing chunks)
//   adaptive      — the paper's throughput-matched sizing
//
// Expected: adaptive wins on heterogeneous fleets (the design claim), and
// the fixed policies bracket it from both failure directions.

#include <cstdio>
#include <vector>

#include "bio/seqgen.hpp"
#include "dsearch/dsearch.hpp"
#include "sim/sim_driver.hpp"
#include "util/logging.hpp"

using namespace hdcs;

namespace {

constexpr double kScale = 2500.0;

sim::SimConfig base_config(const std::string& policy) {
  sim::SimConfig cfg;
  cfg.reference_ops_per_sec = 5e7 / kScale;
  cfg.network.bandwidth_bps = 100e6 / 8 / kScale;
  cfg.network.server_overhead_s = 1.2e-3;
  cfg.policy_spec = policy;
  cfg.scheduler.lease_timeout = 2000;
  cfg.scheduler.bounds.min_ops = 100;
  cfg.seed = 3;
  return cfg;
}

struct Workload {
  std::vector<bio::Sequence> queries;
  std::vector<bio::Sequence> database;
  dsearch::DSearchConfig config;
};

Workload make_workload() {
  Rng rng(77);
  Workload w;
  w.queries = bio::make_queries(rng, 2, 250, bio::Alphabet::kProtein);
  bio::DatabaseSpec spec;
  spec.num_sequences = 5000;
  spec.mean_length = 150;
  w.database = bio::make_database(rng, spec, w.queries);
  w.config.top_k = 10;
  return w;
}

}  // namespace

int main() {
  set_log_level(LogLevel::kError);
  dsearch::register_algorithm();
  auto w = make_workload();
  double total_ops = static_cast<double>(bio::total_residues(w.database)) *
                     bio::total_residues(w.queries);

  std::printf("=== Ablation: granularity policy on a heterogeneous fleet ===\n");
  std::printf("fleet: 16 donors, alternating speed 2.0 (PIV-class) and 0.3 "
              "(PII-class); %.2e DP cells\n\n",
              total_ops);

  // Unit sizes for the fixed policies, relative to the mean donor:
  // "small" ~1.5 s on the reference machine, "large" ~1/20th of the whole
  // job (so 16 donors x slow-donor stragglers hurt).
  double ref = 5e7 / kScale;
  std::vector<std::pair<std::string, std::string>> policies = {
      {"fixed-small", "fixed:" + std::to_string(ref * 1.5)},
      {"fixed-large", "fixed:" + std::to_string(total_ops / 20)},
      {"guided", "guided:2"},
      {"adaptive", "adaptive:40"},
  };

  auto cache = std::make_shared<sim::SimDriver::ResultCache>();
  std::printf("%-14s %14s %12s %14s %12s\n", "policy", "makespan(s)", "units",
              "reissued", "utilization");
  double adaptive_makespan = 0, best_other = 1e300;
  for (const auto& [label, spec] : policies) {
    sim::SimDriver driver(base_config(spec), sim::heterogeneous_fleet(16));
    driver.set_shared_cache(cache);
    auto dm = std::make_shared<dsearch::DSearchDataManager>(w.queries, w.database,
                                                            w.config);
    driver.add_problem(dm);
    auto out = driver.run();
    std::printf("%-14s %14.0f %12llu %14llu %11.1f%%\n", label.c_str(),
                out.makespan_s,
                static_cast<unsigned long long>(out.scheduler.units_issued),
                static_cast<unsigned long long>(out.scheduler.units_reissued),
                100.0 * out.mean_utilization());
    if (label == "adaptive") {
      adaptive_makespan = out.makespan_s;
    } else {
      best_other = std::min(best_other, out.makespan_s);
    }
  }

  std::printf("\nacceptance check: adaptive at least matches every other "
              "policy ........ %s\n",
              adaptive_makespan <= best_other * 1.05 ? "PASS" : "FAIL");
  return 0;
}
