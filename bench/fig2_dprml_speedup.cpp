// Figure 2 reproduction: "Speedup achieved over 50 taxa dataset with 6
// problems running simultaneously" (DPRml, 1..40 processors).
//
// DPRml is a staged computation: each insertion stage fans candidate
// placements out to donors, then synchronises before choosing the best.
// A single instance therefore leaves donors idle at stage barriers —
// "running a single instance of the application will result in clients
// becoming idle whilst waiting for stages to be completed" — so the paper
// (and this bench) runs six instances simultaneously, which the scheduler
// interleaves. The single-instance ablation quantifies exactly that.

#include <cstdio>
#include <vector>

#include "dprml/dprml.hpp"
#include "phylo/simulate.hpp"
#include "sim/sim_driver.hpp"
#include "util/logging.hpp"
#include "util/stopwatch.hpp"

using namespace hdcs;

namespace {

constexpr int kTaxa = 50;
constexpr std::size_t kSites = 120;
constexpr int kInstances = 6;

sim::SimConfig fig2_sim_config() {
  sim::SimConfig cfg;
  cfg.reference_ops_per_sec = 5e7;  // PIII-1GHz in likelihood-flop units
  cfg.network.bandwidth_bps = 100e6 / 8;
  cfg.network.latency_s = 0.5e-3;
  cfg.network.server_overhead_s = 1.2e-3;
  cfg.policy_spec = "adaptive:4";  // a few edges per unit: stages stay wide
  cfg.scheduler.lease_timeout = 600;
  cfg.scheduler.bounds.min_ops = 1;
  cfg.no_work_retry_s = 0.25;
  cfg.seed = 2;
  return cfg;
}

phylo::Alignment make_dataset() {
  Rng rng(1905);
  auto tree = phylo::random_tree(rng, {kTaxa, 0.1, "t"});
  auto model = phylo::SubstModel::jc69();
  return phylo::simulate_alignment(rng, tree, model, phylo::RateModel::uniform(),
                                   {kSites});
}

dprml::DPRmlConfig instance_config(int instance) {
  dprml::DPRmlConfig c;
  c.model_spec = "JC69";
  c.branch_tolerance = 2e-2;
  c.eval_passes = 1;
  c.refine_passes = 1;
  c.full_refine_every = 25;
  c.use_eval_cache = true;  // deterministic; shared across the sweep
  // Present the job at real scale: the paper's stages take minutes, so
  // polling/barrier latencies must be a small fraction of a stage.
  c.cost_scale = 10.0;
  c.order_seed = static_cast<std::uint64_t>(instance + 1);
  return c;
}

/// Run `instances` DPRml problems on `procs` machines; returns the outcome.
sim::SimOutcome run_fleet(int procs, int instances, const phylo::Alignment& aln,
                          std::shared_ptr<sim::SimDriver::ResultCache> cache) {
  sim::SimDriver driver(fig2_sim_config(), sim::lab_fleet(procs, 1.0, 0.02));
  driver.set_shared_cache(std::move(cache));
  for (int i = 0; i < instances; ++i) {
    driver.add_problem(
        std::make_shared<dprml::DPRmlDataManager>(aln, instance_config(i)));
  }
  return driver.run();
}

/// Paper Fig. 2 anchors read off the plot (approximate, 6-instance line).
double paper_speedup(int n) {
  struct Anchor {
    int n;
    double s;
  };
  static const Anchor anchors[] = {{1, 1}, {5, 4.9}, {10, 9.5}, {15, 14},
                                   {20, 18.5}, {25, 23}, {30, 27}, {35, 31},
                                   {40, 35}};
  for (std::size_t i = 1; i < std::size(anchors); ++i) {
    if (n <= anchors[i].n) {
      const auto& a = anchors[i - 1];
      const auto& b = anchors[i];
      double t = static_cast<double>(n - a.n) / (b.n - a.n);
      return a.s + t * (b.s - a.s);
    }
  }
  return anchors[std::size(anchors) - 1].s;
}

}  // namespace

int main() {
  set_log_level(LogLevel::kError);
  dprml::register_algorithm();
  dprml::EvalCache::global().clear();
  auto aln = make_dataset();
  std::printf(
      "=== Figure 2: DPRml speedup, %d-taxon dataset, %d instances ===\n",
      kTaxa, kInstances);
  std::printf("alignment: %zu taxa x %zu sites, model JC69; stepwise "
              "insertion with local/global smoothing\n\n",
              aln.taxon_count(), aln.site_count());

  auto cache = std::make_shared<sim::SimDriver::ResultCache>();
  const std::vector<int> fleet_sizes = {1, 2, 4, 8, 12, 16, 20, 24, 28, 32, 36, 40};

  Stopwatch wall;
  double t1 = 0;
  double prev = 0;
  bool monotone = true;
  double speedup_at_40 = 0;
  std::vector<std::string> reference_trees;

  std::printf("%6s %14s %10s %10s %12s %12s\n", "procs", "makespan(s)",
              "speedup", "linear", "efficiency", "paper(~)");
  for (int n : fleet_sizes) {
    auto out = run_fleet(n, kInstances, aln, cache);
    // Decode the six trees; they must not depend on the fleet size.
    std::vector<std::string> trees;
    for (auto& [pid, bytes] : out.final_results) {
      ByteReader r{std::span<const std::byte>(bytes)};
      trees.push_back(dprml::decode_dprml_result(r).newick);
    }
    if (n == 1) {
      t1 = out.makespan_s;
      reference_trees = trees;
    } else if (trees != reference_trees) {
      std::printf("WARNING: trees changed with fleet size!\n");
    }
    double speedup = t1 / out.makespan_s;
    if (speedup < prev) monotone = false;
    prev = speedup;
    if (n == 40) speedup_at_40 = speedup;
    std::printf("%6d %14.0f %10.2f %10d %11.1f%% %12.1f\n", n, out.makespan_s,
                speedup, n, 100.0 * speedup / n, paper_speedup(n));
  }

  // Ablation: why six instances? A single instance on the same fleets.
  std::printf("\n--- ablation: single instance vs %d instances ---\n",
              kInstances);
  std::printf("%6s %16s %16s %18s\n", "procs", "util(1 inst)",
              "util(6 inst)", "speedup(1 inst)");
  double single_t1 = 0;
  for (int n : {1, 8, 16, 40}) {
    auto one = run_fleet(n, 1, aln, cache);
    auto six = run_fleet(n, kInstances, aln, cache);
    if (n == 1) single_t1 = one.makespan_s;
    std::printf("%6d %15.1f%% %15.1f%% %18.2f\n", n,
                100.0 * one.mean_utilization(), 100.0 * six.mean_utilization(),
                single_t1 / one.makespan_s);
  }

  std::printf("\nwall-clock for the whole sweep: %.1f s\n", wall.seconds());
  std::printf("(candidate-evaluation cache: %zu entries)\n",
              dprml::EvalCache::global().size());
  std::printf("\nacceptance checks (DESIGN.md):\n");
  std::printf("  speedup monotone in processors ............... %s\n",
              monotone ? "PASS" : "FAIL");
  std::printf("  >= 0.8x linear at 40 procs (paper ~35/40) ..... %s (%.2f)\n",
              speedup_at_40 >= 0.8 * 40 ? "PASS" : "FAIL", speedup_at_40);
  return 0;
}
