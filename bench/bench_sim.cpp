// Microbenchmarks of the discrete-event simulation machinery: raw event
// throughput and full end-to-end simulated-donor work cycles. These bound
// how large a fleet/workload the figure harnesses can sweep in reasonable
// wall-clock time.

#include <benchmark/benchmark.h>

#include "sim/sim_driver.hpp"
#include "tests/toy_problem.hpp"

using namespace hdcs;

namespace {

void BM_EventQueueThroughput(benchmark::State& state) {
  for (auto _ : state) {
    sim::EventQueue q;
    int fired = 0;
    // A self-rescheduling chain of 10k events.
    std::function<void()> chain = [&] {
      if (++fired < 10000) q.schedule(q.now() + 0.001, chain);
    };
    q.schedule(0.0, chain);
    q.run_until();
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_EventQueueThroughput);

void BM_SimulatedWorkCycles(benchmark::State& state) {
  // Full simulation of a fleet chewing through a toy problem; items =
  // completed work units (one unit ~ 6 simulated events + scheduling).
  test::register_toy_algorithm();
  auto machines = static_cast<int>(state.range(0));
  std::uint64_t total_units = 0;
  for (auto _ : state) {
    sim::SimConfig cfg;
    cfg.reference_ops_per_sec = 1e6;
    cfg.scheduler.bounds.min_ops = 1;
    cfg.policy_spec = "fixed:10000";  // ~1000 units per run
    cfg.cache_results = false;
    sim::SimDriver driver(cfg, sim::lab_fleet(machines));
    driver.add_problem(std::make_shared<test::ToySumDataManager>(10000000));
    auto out = driver.run();
    total_units += out.scheduler.results_accepted;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(total_units));
}
BENCHMARK(BM_SimulatedWorkCycles)->Arg(4)->Arg(32)->Arg(83);

}  // namespace

BENCHMARK_MAIN();
