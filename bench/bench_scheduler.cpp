// Microbenchmarks of the scheduler core: the server's per-request cost is
// what limits how many donors one PIII-500 could feed (Fig. 1's knee), so
// request_work/submit_result must be cheap and scale with client count.

#include <benchmark/benchmark.h>

#include "dist/scheduler_core.hpp"
#include "tests/toy_problem.hpp"

using namespace hdcs;
using namespace hdcs::dist;

namespace {

SchedulerConfig bench_config() {
  SchedulerConfig cfg;
  cfg.lease_timeout = 1e9;
  cfg.bounds.min_ops = 1;
  cfg.bounds.max_ops = 1e18;
  return cfg;
}

void BM_RequestSubmitCycle(benchmark::State& state) {
  test::register_toy_algorithm();
  auto clients = static_cast<int>(state.range(0));
  SchedulerCore core(bench_config(), std::make_unique<AdaptiveThroughput>(1.0));
  // Effectively infinite problem so units never run out.
  auto dm = std::make_shared<test::ToySumDataManager>(1ull << 62);
  core.submit_problem(dm);
  std::vector<ClientId> ids;
  for (int i = 0; i < clients; ++i) {
    ids.push_back(core.client_joined("c" + std::to_string(i), 1e6, 0.0));
  }
  test::ToySumAlgorithm algo;
  auto data = dm->problem_data();
  algo.initialize(data);

  double t = 0;
  std::size_t i = 0;
  ByteWriter result_template;
  for (auto _ : state) {
    ClientId cid = ids[i++ % ids.size()];
    auto unit = core.request_work(cid, t);
    ResultUnit r;
    r.problem_id = unit->problem_id;
    r.unit_id = unit->unit_id;
    r.stage = unit->stage;
    // A canned tiny result: the bench measures scheduling, not the sum.
    ByteWriter w;
    w.u64(0);
    r.payload = w.take();
    core.submit_result(cid, r, t + 0.001);
    t += 0.01;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_RequestSubmitCycle)->Arg(1)->Arg(8)->Arg(64)->Arg(256);

void BM_TickWithManyLeases(benchmark::State& state) {
  auto leases = static_cast<int>(state.range(0));
  SchedulerCore core(bench_config(), std::make_unique<FixedGranularity>(100));
  auto dm = std::make_shared<test::ToySumDataManager>(1ull << 62);
  core.submit_problem(dm);
  auto cid = core.client_joined("c", 1e6, 0.0);
  for (int i = 0; i < leases; ++i) core.request_work(cid, 0.0);

  double t = 1.0;
  for (auto _ : state) {
    core.tick(t);  // nothing expires (timeout 1e9): pure scan cost
    t += 0.001;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * leases);
}
BENCHMARK(BM_TickWithManyLeases)->Arg(100)->Arg(1000)->Arg(10000);

void BM_MultiProblemRoundRobin(benchmark::State& state) {
  auto problems = static_cast<int>(state.range(0));
  SchedulerCore core(bench_config(), std::make_unique<FixedGranularity>(1000));
  for (int i = 0; i < problems; ++i) {
    core.submit_problem(std::make_shared<test::ToySumDataManager>(1ull << 62));
  }
  auto cid = core.client_joined("c", 1e6, 0.0);
  double t = 0;
  for (auto _ : state) {
    auto unit = core.request_work(cid, t);
    ResultUnit r;
    r.problem_id = unit->problem_id;
    r.unit_id = unit->unit_id;
    ByteWriter w;
    w.u64(0);
    r.payload = w.take();
    core.submit_result(cid, r, t);
    t += 0.01;
  }
}
BENCHMARK(BM_MultiProblemRoundRobin)->Arg(1)->Arg(6)->Arg(32);

}  // namespace

BENCHMARK_MAIN();
