// trace_summary — turn a JSONL event trace into human-readable tables,
// machine-readable JSON, a critical-path decomposition, or a Perfetto
// (Chrome trace-event) timeline.
//
// Works on traces from either the TCP server or the simulator (same
// schema). The default text report covers:
//   - run-wide event counts and unit accounting,
//   - per-client throughput (units, ops, units/sec over attached span),
//   - the straggler tail of unit service times (p50/p90/p99/max),
//   - reissue / hedge / duplicate breakdowns per problem.
//
// Modes (composable):
//   --json           one JSON document per input instead of text; exits
//                    non-zero when any line failed to parse, so CI can use
//                    it as a trace schema lint.
//   --critical-path  append a makespan decomposition built from
//                    unit_profile events (schema v2): scheduler idle vs
//                    per-phase donor time vs the straggler tail, plus
//                    per-client utilization.
//   --perfetto OUT   write a Chrome trace-event JSON to OUT: one process
//                    per input trace, one track (tid) per donor, one slice
//                    per span-profile phase. Load it in Perfetto or
//                    chrome://tracing.
//
// Usage: trace_summary [--json] [--critical-path] [--perfetto out.json]
//                      <trace.jsonl>... | -

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "obs/jsonl.hpp"
#include "obs/trace.hpp"
#include "util/error.hpp"

namespace {

using hdcs::obs::TraceRecord;

struct ClientRow {
  std::string name;
  double joined_at = -1;
  double last_event = 0;
  double left_at = -1;
  std::uint64_t issued = 0;
  std::uint64_t completed = 0;
  double cost_ops = 0;
  double busy_s = 0;  // sum of elapsed_s over this client's completions

  [[nodiscard]] double attached_span() const {
    double end = left_at >= 0 ? left_at : last_event;
    return joined_at >= 0 ? end - joined_at : 0;
  }
};

struct ProblemRow {
  std::uint64_t issued = 0;
  std::uint64_t completed = 0;
  std::uint64_t reissued = 0;
  std::uint64_t hedged = 0;
  std::uint64_t duplicates = 0;
};

/// One unit_profile event: the donor's span profile merged with the
/// scheduler's lease clock (see docs/OBSERVABILITY.md, schema v2).
struct ProfileRow {
  double t = 0;  // completion time; the lease began at t - elapsed_s
  std::uint64_t client = 0, problem = 0, unit = 0;
  double elapsed_s = 0;
  double queue_wait_s = 0, blob_fetch_s = 0, decompress_s = 0;
  double compute_s = 0, encode_s = 0, submit_s = 0;
  std::uint64_t threads = 1, saturations = 0;

  [[nodiscard]] double phase_sum() const {
    return queue_wait_s + blob_fetch_s + decompress_s + compute_s + encode_s +
           submit_s;
  }
};

constexpr const char* kPhaseNames[] = {"queue_wait", "blob_fetch",
                                       "decompress", "compute",
                                       "encode",     "submit"};

double phase_value(const ProfileRow& p, std::size_t i) {
  const double v[] = {p.queue_wait_s, p.blob_fetch_s, p.decompress_s,
                      p.compute_s,    p.encode_s,     p.submit_s};
  return v[i];
}

struct Summary {
  std::map<std::string, std::uint64_t> event_counts;
  std::map<std::uint64_t, ClientRow> clients;
  std::map<std::uint64_t, ProblemRow> problems;
  std::vector<double> unit_elapsed;  // service times from unit_completed
  std::vector<ProfileRow> profiles;
  /// [start, end] lease intervals from any event carrying elapsed_s; the
  /// uncovered part of the trace span is time the scheduler sat with no
  /// unit in any donor's hands.
  std::vector<std::pair<double, double>> busy_intervals;
  double t_min = 0, t_max = 0;
  bool any = false;
  std::uint64_t parse_errors = 0;
};

void ingest_line(Summary& s, const std::string& line) {
  if (line.empty()) return;
  TraceRecord rec;
  try {
    rec = hdcs::obs::parse_trace_line(line);
  } catch (const hdcs::Error&) {
    s.parse_errors += 1;
    return;
  }
  if (!s.any) {
    s.t_min = s.t_max = rec.t;
    s.any = true;
  }
  s.t_min = std::min(s.t_min, rec.t);
  s.t_max = std::max(s.t_max, rec.t);
  s.event_counts[rec.ev] += 1;

  auto client_of = [&]() -> ClientRow* {
    if (!rec.has("client")) return nullptr;
    auto& row = s.clients[static_cast<std::uint64_t>(rec.number("client"))];
    row.last_event = std::max(row.last_event, rec.t);
    return &row;
  };
  auto problem_of = [&]() -> ProblemRow* {
    if (!rec.has("problem")) return nullptr;
    return &s.problems[static_cast<std::uint64_t>(rec.number("problem"))];
  };

  if (rec.ev == "client_joined") {
    ClientRow* c = client_of();
    if (c) {
      c->joined_at = rec.t;
      if (rec.has("name")) c->name = rec.text("name");
    }
  } else if (rec.ev == "client_left") {
    if (ClientRow* c = client_of()) c->left_at = rec.t;
  } else if (rec.ev == "unit_issued" || rec.ev == "unit_reissued" ||
             rec.ev == "unit_hedged") {
    if (ClientRow* c = client_of()) c->issued += 1;
    if (ProblemRow* p = problem_of()) {
      p->issued += 1;
      if (rec.ev == "unit_reissued") p->reissued += 1;
      if (rec.ev == "unit_hedged") p->hedged += 1;
    }
  } else if (rec.ev == "unit_completed") {
    ClientRow* c = client_of();
    if (ProblemRow* p = problem_of()) p->completed += 1;
    if (rec.has("elapsed_s")) {
      double e = rec.number("elapsed_s");
      s.unit_elapsed.push_back(e);
      s.busy_intervals.emplace_back(rec.t - e, rec.t);
      if (c) c->busy_s += e;
    }
    if (c) {
      c->completed += 1;
      if (rec.has("cost_ops")) c->cost_ops += rec.number("cost_ops");
    }
  } else if (rec.ev == "unit_profile") {
    ProfileRow p;
    p.t = rec.t;
    if (rec.has("client")) p.client = static_cast<std::uint64_t>(rec.number("client"));
    if (rec.has("problem")) p.problem = static_cast<std::uint64_t>(rec.number("problem"));
    if (rec.has("unit")) p.unit = static_cast<std::uint64_t>(rec.number("unit"));
    p.elapsed_s = rec.has("elapsed_s") ? rec.number("elapsed_s") : 0;
    p.queue_wait_s = rec.has("queue_wait_s") ? rec.number("queue_wait_s") : 0;
    p.blob_fetch_s = rec.has("blob_fetch_s") ? rec.number("blob_fetch_s") : 0;
    p.decompress_s = rec.has("decompress_s") ? rec.number("decompress_s") : 0;
    p.compute_s = rec.has("compute_s") ? rec.number("compute_s") : 0;
    p.encode_s = rec.has("encode_s") ? rec.number("encode_s") : 0;
    p.submit_s = rec.has("submit_s") ? rec.number("submit_s") : 0;
    if (rec.has("threads")) p.threads = static_cast<std::uint64_t>(rec.number("threads"));
    if (rec.has("saturations")) {
      p.saturations = static_cast<std::uint64_t>(rec.number("saturations"));
    }
    s.profiles.push_back(p);
    s.busy_intervals.emplace_back(rec.t - p.elapsed_s, rec.t);
    client_of();  // keep last_event fresh for attached_span
  } else if (rec.ev == "result_duplicate") {
    client_of();
    if (ProblemRow* p = problem_of()) p->duplicates += 1;
  }
}

double quantile(std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0;
  double idx = q * static_cast<double>(sorted.size() - 1);
  auto lo = static_cast<std::size_t>(idx);
  std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  double frac = idx - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

/// Time within [t_min, t_max] not covered by any lease interval: the
/// scheduler had zero units in flight (donor-starved, stage barrier, or
/// simply done issuing).
double scheduler_idle(const Summary& s) {
  if (!s.any) return 0;
  auto intervals = s.busy_intervals;
  std::sort(intervals.begin(), intervals.end());
  double covered = 0, cur_lo = 0, cur_hi = -1;
  bool open = false;
  for (auto [lo, hi] : intervals) {
    lo = std::max(lo, s.t_min);
    hi = std::min(hi, s.t_max);
    if (hi <= lo) continue;
    if (!open || lo > cur_hi) {
      if (open) covered += cur_hi - cur_lo;
      cur_lo = lo;
      cur_hi = hi;
      open = true;
    } else {
      cur_hi = std::max(cur_hi, hi);
    }
  }
  if (open) covered += cur_hi - cur_lo;
  return std::max(0.0, (s.t_max - s.t_min) - covered);
}

struct CriticalPath {
  std::size_t profiled_units = 0;
  double makespan_s = 0;
  double idle_s = 0;
  double busy_s = 0;                // sum of profiled elapsed_s
  double phase_total[6] = {0};      // indexed like kPhaseNames
  double max_residual_s = 0;        // |elapsed - sum(phases)| worst case
  const ProfileRow* slowest = nullptr;
};

CriticalPath critical_path(const Summary& s) {
  CriticalPath cp;
  cp.makespan_s = s.any ? s.t_max - s.t_min : 0;
  cp.idle_s = scheduler_idle(s);
  cp.profiled_units = s.profiles.size();
  for (const ProfileRow& p : s.profiles) {
    cp.busy_s += p.elapsed_s;
    for (std::size_t i = 0; i < 6; ++i) cp.phase_total[i] += phase_value(p, i);
    cp.max_residual_s =
        std::max(cp.max_residual_s, std::abs(p.elapsed_s - p.phase_sum()));
    if (!cp.slowest || p.elapsed_s > cp.slowest->elapsed_s) cp.slowest = &p;
  }
  return cp;
}

void print_critical_path(const Summary& s) {
  CriticalPath cp = critical_path(s);
  std::printf("\ncritical path (makespan decomposition):\n");
  if (cp.profiled_units == 0) {
    std::printf("  (no unit_profile events — v5 donors and trace schema v2 "
                "required)\n");
    return;
  }
  auto pct = [&](double v, double whole) {
    return whole > 0 ? 100.0 * v / whole : 0.0;
  };
  std::printf("  makespan        %10.4g s\n", cp.makespan_s);
  std::printf("  scheduler idle  %10.4g s  (%5.1f%% of makespan, no unit in "
              "flight)\n",
              cp.idle_s, pct(cp.idle_s, cp.makespan_s));
  std::printf("  donor lease time %9.4g s across %zu profiled units:\n",
              cp.busy_s, cp.profiled_units);
  for (std::size_t i = 0; i < 6; ++i) {
    std::printf("    %-11s %10.4g s  (%5.1f%%)\n", kPhaseNames[i],
                cp.phase_total[i], pct(cp.phase_total[i], cp.busy_s));
  }
  if (cp.slowest) {
    std::printf("  straggler tail: unit %llu on client %llu took %.4g s\n",
                static_cast<unsigned long long>(cp.slowest->unit),
                static_cast<unsigned long long>(cp.slowest->client),
                cp.slowest->elapsed_s);
  }
  std::printf("  max profile residual: %.4g s (|elapsed - sum(phases)|)\n",
              cp.max_residual_s);

  std::printf("\nper-client utilization (lease time / attached span):\n");
  std::printf("  %6s  %-16s %10s %10s %6s\n", "id", "name", "busy_s", "span_s",
              "util%");
  for (const auto& [id, c] : s.clients) {
    double span = c.attached_span();
    std::printf("  %6llu  %-16s %10.4g %10.4g %6.1f\n",
                static_cast<unsigned long long>(id), c.name.c_str(), c.busy_s,
                span, span > 0 ? 100.0 * c.busy_s / span : 0.0);
  }
}

void print_summary(const std::string& label, Summary& s, bool with_critical) {
  std::printf("=== %s ===\n", label.c_str());
  if (!s.any) {
    std::printf("  (no events)\n");
    return;
  }
  std::printf("trace span: %.3f s (%.3f .. %.3f)\n", s.t_max - s.t_min, s.t_min,
              s.t_max);
  if (s.parse_errors) {
    std::printf("WARNING: %llu unparseable lines skipped\n",
                static_cast<unsigned long long>(s.parse_errors));
  }

  std::printf("\nevents:\n");
  for (const auto& [ev, n] : s.event_counts) {
    std::printf("  %-18s %8llu\n", ev.c_str(),
                static_cast<unsigned long long>(n));
  }

  std::printf("\nper-client throughput:\n");
  std::printf("  %6s  %-16s %8s %8s %12s %10s\n", "id", "name", "issued",
              "done", "ops", "units/s");
  for (const auto& [id, c] : s.clients) {
    double span = c.attached_span();
    double rate = span > 0 ? static_cast<double>(c.completed) / span : 0;
    std::printf("  %6llu  %-16s %8llu %8llu %12.4g %10.4g\n",
                static_cast<unsigned long long>(id), c.name.c_str(),
                static_cast<unsigned long long>(c.issued),
                static_cast<unsigned long long>(c.completed), c.cost_ops, rate);
  }

  if (!s.unit_elapsed.empty()) {
    std::sort(s.unit_elapsed.begin(), s.unit_elapsed.end());
    std::printf("\nunit service time (straggler tail, %zu samples):\n",
                s.unit_elapsed.size());
    std::printf("  p50=%.4g s  p90=%.4g s  p99=%.4g s  max=%.4g s\n",
                quantile(s.unit_elapsed, 0.5), quantile(s.unit_elapsed, 0.9),
                quantile(s.unit_elapsed, 0.99), s.unit_elapsed.back());
  }

  std::printf("\nper-problem unit accounting:\n");
  std::printf("  %8s %8s %8s %9s %7s %10s\n", "problem", "issued", "done",
              "reissued", "hedged", "duplicates");
  for (const auto& [pid, p] : s.problems) {
    std::printf("  %8llu %8llu %8llu %9llu %7llu %10llu\n",
                static_cast<unsigned long long>(pid),
                static_cast<unsigned long long>(p.issued),
                static_cast<unsigned long long>(p.completed),
                static_cast<unsigned long long>(p.reissued),
                static_cast<unsigned long long>(p.hedged),
                static_cast<unsigned long long>(p.duplicates));
  }
  if (with_critical) print_critical_path(s);
  std::printf("\n");
}

std::string json_str(const std::string& v) {
  return "\"" + hdcs::obs::json_escape(v) + "\"";
}

std::string json_num(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.12g", v);
  // A bare nan/inf is not JSON; the trace never produces them, but a tool
  // must not emit unparseable output even on a hostile input.
  std::string s = buf;
  if (s.find_first_not_of("0123456789+-.eE") != std::string::npos) return "0";
  return s;
}

/// One JSON document for one trace (printed on its own line — several
/// inputs yield JSONL).
void print_json(const std::string& label, Summary& s) {
  std::ostringstream out;
  out << "{\"label\":" << json_str(label) << ",\"parse_errors\":" << s.parse_errors
      << ",\"span_s\":" << json_num(s.any ? s.t_max - s.t_min : 0)
      << ",\"t_min\":" << json_num(s.t_min) << ",\"t_max\":" << json_num(s.t_max);
  out << ",\"events\":{";
  bool first = true;
  for (const auto& [ev, n] : s.event_counts) {
    if (!first) out << ",";
    first = false;
    out << json_str(ev) << ":" << n;
  }
  out << "},\"clients\":[";
  first = true;
  for (const auto& [id, c] : s.clients) {
    if (!first) out << ",";
    first = false;
    double span = c.attached_span();
    out << "{\"id\":" << id << ",\"name\":" << json_str(c.name)
        << ",\"issued\":" << c.issued << ",\"completed\":" << c.completed
        << ",\"cost_ops\":" << json_num(c.cost_ops)
        << ",\"busy_s\":" << json_num(c.busy_s)
        << ",\"span_s\":" << json_num(span) << ",\"units_per_s\":"
        << json_num(span > 0 ? static_cast<double>(c.completed) / span : 0)
        << "}";
  }
  out << "],\"problems\":[";
  first = true;
  for (const auto& [pid, p] : s.problems) {
    if (!first) out << ",";
    first = false;
    out << "{\"problem\":" << pid << ",\"issued\":" << p.issued
        << ",\"completed\":" << p.completed << ",\"reissued\":" << p.reissued
        << ",\"hedged\":" << p.hedged << ",\"duplicates\":" << p.duplicates
        << "}";
  }
  out << "]";
  std::sort(s.unit_elapsed.begin(), s.unit_elapsed.end());
  out << ",\"unit_elapsed\":{\"count\":" << s.unit_elapsed.size()
      << ",\"p50\":" << json_num(quantile(s.unit_elapsed, 0.5))
      << ",\"p90\":" << json_num(quantile(s.unit_elapsed, 0.9))
      << ",\"p99\":" << json_num(quantile(s.unit_elapsed, 0.99)) << ",\"max\":"
      << json_num(s.unit_elapsed.empty() ? 0 : s.unit_elapsed.back()) << "}";
  CriticalPath cp = critical_path(s);
  out << ",\"critical_path\":{\"profiled_units\":" << cp.profiled_units
      << ",\"makespan_s\":" << json_num(cp.makespan_s)
      << ",\"scheduler_idle_s\":" << json_num(cp.idle_s)
      << ",\"donor_lease_s\":" << json_num(cp.busy_s) << ",\"phases\":{";
  for (std::size_t i = 0; i < 6; ++i) {
    if (i) out << ",";
    out << "\"" << kPhaseNames[i] << "_s\":" << json_num(cp.phase_total[i]);
  }
  out << "},\"max_residual_s\":" << json_num(cp.max_residual_s);
  if (cp.slowest) {
    out << ",\"slowest\":{\"unit\":" << cp.slowest->unit
        << ",\"client\":" << cp.slowest->client
        << ",\"elapsed_s\":" << json_num(cp.slowest->elapsed_s) << "}";
  }
  out << "}}";
  std::printf("%s\n", out.str().c_str());
}

/// Chrome trace-event (Perfetto-loadable) export: one process per input
/// trace, one thread per donor, the six profile phases of each unit laid
/// end to end from lease start (t - elapsed_s) to completion (t).
/// Timestamps are microseconds, as the format requires.
void write_perfetto(std::ostream& out,
                    const std::vector<std::pair<std::string, Summary>>& all) {
  out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  auto emit = [&](const std::string& body) {
    if (!first) out << ",";
    first = false;
    out << "{" << body << "}";
  };
  for (std::size_t fi = 0; fi < all.size(); ++fi) {
    const auto& [label, s] = all[fi];
    const std::uint64_t pid = fi + 1;
    emit("\"ph\":\"M\",\"name\":\"process_name\",\"pid\":" + std::to_string(pid)
         + ",\"args\":{\"name\":" + json_str(label) + "}");
    for (const auto& [id, c] : s.clients) {
      std::string name = c.name.empty() ? ("client-" + std::to_string(id))
                                        : c.name;
      emit("\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":" +
           std::to_string(pid) + ",\"tid\":" + std::to_string(id) +
           ",\"args\":{\"name\":" + json_str(name) + "}");
    }
    for (const ProfileRow& p : s.profiles) {
      double start = p.t - p.elapsed_s;
      for (std::size_t i = 0; i < 6; ++i) {
        double dur = phase_value(p, i);
        if (dur <= 0) continue;
        emit("\"ph\":\"X\",\"cat\":\"unit\",\"name\":\"" +
             std::string(kPhaseNames[i]) + "\",\"pid\":" + std::to_string(pid) +
             ",\"tid\":" + std::to_string(p.client) + ",\"ts\":" +
             json_num(start * 1e6) + ",\"dur\":" + json_num(dur * 1e6) +
             ",\"args\":{\"unit\":" + std::to_string(p.unit) + ",\"problem\":" +
             std::to_string(p.problem) + ",\"threads\":" +
             std::to_string(p.threads) + ",\"saturations\":" +
             std::to_string(p.saturations) + "}");
        start += dur;
      }
    }
  }
  out << "]}\n";
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false, critical = false;
  std::string perfetto_path;
  std::vector<std::string> inputs;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--json") {
      json = true;
    } else if (arg == "--critical-path") {
      critical = true;
    } else if (arg == "--perfetto") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "--perfetto needs an output path\n");
        return 2;
      }
      perfetto_path = argv[++i];
    } else {
      inputs.push_back(arg);
    }
  }
  if (inputs.empty()) {
    std::fprintf(stderr,
                 "usage: %s [--json] [--critical-path] [--perfetto out.json] "
                 "<trace.jsonl>... | -\n",
                 argv[0]);
    return 2;
  }

  std::vector<std::pair<std::string, Summary>> all;
  for (const std::string& arg : inputs) {
    Summary s;
    std::string line;
    if (arg == "-") {
      while (std::getline(std::cin, line)) ingest_line(s, line);
      all.emplace_back("stdin", std::move(s));
      continue;
    }
    std::ifstream f(arg);
    if (!f) {
      std::fprintf(stderr, "cannot open %s\n", arg.c_str());
      return 2;
    }
    while (std::getline(f, line)) ingest_line(s, line);
    all.emplace_back(arg, std::move(s));
  }

  int rc = 0;
  for (auto& [label, s] : all) {
    if (json) {
      print_json(label, s);
      // JSON mode doubles as the CI schema lint: an unparseable line in a
      // trace artifact must fail the job, not vanish into a warning.
      if (s.parse_errors > 0) rc = 1;
    } else {
      print_summary(label, s, critical);
    }
    if (!s.any) rc |= 1;
  }
  if (!perfetto_path.empty()) {
    std::ofstream out(perfetto_path);
    if (!out) {
      std::fprintf(stderr, "cannot open %s for writing\n",
                   perfetto_path.c_str());
      return 2;
    }
    write_perfetto(out, all);
  }
  return rc;
}
