// trace_summary — turn a JSONL event trace into human-readable tables.
//
// Works on traces from either the TCP server or the simulator (same
// schema). Reports:
//   - run-wide event counts and unit accounting,
//   - per-client throughput (units, ops, units/sec over attached span),
//   - the straggler tail of unit service times (p50/p90/p99/max),
//   - reissue / hedge / duplicate breakdowns per problem.
//
// Usage: trace_summary <trace.jsonl> [trace2.jsonl ...]
//        trace_summary -          (read a single trace from stdin)

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "obs/trace.hpp"
#include "util/error.hpp"

namespace {

using hdcs::obs::TraceRecord;

struct ClientRow {
  std::string name;
  double joined_at = -1;
  double last_event = 0;
  double left_at = -1;
  std::uint64_t issued = 0;
  std::uint64_t completed = 0;
  double cost_ops = 0;

  [[nodiscard]] double attached_span() const {
    double end = left_at >= 0 ? left_at : last_event;
    return joined_at >= 0 ? end - joined_at : 0;
  }
};

struct ProblemRow {
  std::uint64_t issued = 0;
  std::uint64_t completed = 0;
  std::uint64_t reissued = 0;
  std::uint64_t hedged = 0;
  std::uint64_t duplicates = 0;
};

struct Summary {
  std::map<std::string, std::uint64_t> event_counts;
  std::map<std::uint64_t, ClientRow> clients;
  std::map<std::uint64_t, ProblemRow> problems;
  std::vector<double> unit_elapsed;  // service times from unit_completed
  double t_min = 0, t_max = 0;
  bool any = false;
  std::uint64_t parse_errors = 0;
};

void ingest_line(Summary& s, const std::string& line) {
  if (line.empty()) return;
  TraceRecord rec;
  try {
    rec = hdcs::obs::parse_trace_line(line);
  } catch (const hdcs::Error&) {
    s.parse_errors += 1;
    return;
  }
  if (!s.any) {
    s.t_min = s.t_max = rec.t;
    s.any = true;
  }
  s.t_min = std::min(s.t_min, rec.t);
  s.t_max = std::max(s.t_max, rec.t);
  s.event_counts[rec.ev] += 1;

  auto client_of = [&]() -> ClientRow* {
    if (!rec.has("client")) return nullptr;
    auto& row = s.clients[static_cast<std::uint64_t>(rec.number("client"))];
    row.last_event = std::max(row.last_event, rec.t);
    return &row;
  };
  auto problem_of = [&]() -> ProblemRow* {
    if (!rec.has("problem")) return nullptr;
    return &s.problems[static_cast<std::uint64_t>(rec.number("problem"))];
  };

  if (rec.ev == "client_joined") {
    ClientRow* c = client_of();
    if (c) {
      c->joined_at = rec.t;
      if (rec.has("name")) c->name = rec.text("name");
    }
  } else if (rec.ev == "client_left") {
    if (ClientRow* c = client_of()) c->left_at = rec.t;
  } else if (rec.ev == "unit_issued" || rec.ev == "unit_reissued" ||
             rec.ev == "unit_hedged") {
    if (ClientRow* c = client_of()) c->issued += 1;
    if (ProblemRow* p = problem_of()) {
      p->issued += 1;
      if (rec.ev == "unit_reissued") p->reissued += 1;
      if (rec.ev == "unit_hedged") p->hedged += 1;
    }
  } else if (rec.ev == "unit_completed") {
    ClientRow* c = client_of();
    if (c) {
      c->completed += 1;
      if (rec.has("cost_ops")) c->cost_ops += rec.number("cost_ops");
    }
    if (ProblemRow* p = problem_of()) p->completed += 1;
    if (rec.has("elapsed_s")) s.unit_elapsed.push_back(rec.number("elapsed_s"));
  } else if (rec.ev == "result_duplicate") {
    client_of();
    if (ProblemRow* p = problem_of()) p->duplicates += 1;
  }
}

double quantile(std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0;
  double idx = q * static_cast<double>(sorted.size() - 1);
  auto lo = static_cast<std::size_t>(idx);
  std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  double frac = idx - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

void print_summary(const std::string& label, Summary& s) {
  std::printf("=== %s ===\n", label.c_str());
  if (!s.any) {
    std::printf("  (no events)\n");
    return;
  }
  std::printf("trace span: %.3f s (%.3f .. %.3f)\n", s.t_max - s.t_min, s.t_min,
              s.t_max);
  if (s.parse_errors) {
    std::printf("WARNING: %llu unparseable lines skipped\n",
                static_cast<unsigned long long>(s.parse_errors));
  }

  std::printf("\nevents:\n");
  for (const auto& [ev, n] : s.event_counts) {
    std::printf("  %-18s %8llu\n", ev.c_str(),
                static_cast<unsigned long long>(n));
  }

  std::printf("\nper-client throughput:\n");
  std::printf("  %6s  %-16s %8s %8s %12s %10s\n", "id", "name", "issued",
              "done", "ops", "units/s");
  for (const auto& [id, c] : s.clients) {
    double span = c.attached_span();
    double rate = span > 0 ? static_cast<double>(c.completed) / span : 0;
    std::printf("  %6llu  %-16s %8llu %8llu %12.4g %10.4g\n",
                static_cast<unsigned long long>(id), c.name.c_str(),
                static_cast<unsigned long long>(c.issued),
                static_cast<unsigned long long>(c.completed), c.cost_ops, rate);
  }

  if (!s.unit_elapsed.empty()) {
    std::sort(s.unit_elapsed.begin(), s.unit_elapsed.end());
    std::printf("\nunit service time (straggler tail, %zu samples):\n",
                s.unit_elapsed.size());
    std::printf("  p50=%.4g s  p90=%.4g s  p99=%.4g s  max=%.4g s\n",
                quantile(s.unit_elapsed, 0.5), quantile(s.unit_elapsed, 0.9),
                quantile(s.unit_elapsed, 0.99), s.unit_elapsed.back());
  }

  std::printf("\nper-problem unit accounting:\n");
  std::printf("  %8s %8s %8s %9s %7s %10s\n", "problem", "issued", "done",
              "reissued", "hedged", "duplicates");
  for (const auto& [pid, p] : s.problems) {
    std::printf("  %8llu %8llu %8llu %9llu %7llu %10llu\n",
                static_cast<unsigned long long>(pid),
                static_cast<unsigned long long>(p.issued),
                static_cast<unsigned long long>(p.completed),
                static_cast<unsigned long long>(p.reissued),
                static_cast<unsigned long long>(p.hedged),
                static_cast<unsigned long long>(p.duplicates));
  }
  std::printf("\n");
}

int run(std::istream& in, const std::string& label) {
  Summary s;
  std::string line;
  while (std::getline(in, line)) ingest_line(s, line);
  print_summary(label, s);
  return s.any ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s <trace.jsonl>... | %s -\n", argv[0], argv[0]);
    return 2;
  }
  int rc = 0;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "-") {
      rc |= run(std::cin, "stdin");
      continue;
    }
    std::ifstream f(arg);
    if (!f) {
      std::fprintf(stderr, "cannot open %s\n", arg.c_str());
      return 2;
    }
    rc |= run(f, arg);
  }
  return rc;
}
